"""Discrete-event simulation kernel.

All of CACTUS-Light's moving parts (HISQ cores, routers, links, the quantum
device bridge) are driven by one :class:`Engine`: a priority queue of
``(time, sequence, callback)`` events.  Time is an integer number of TCU
cycles (4 ns at the paper's 250 MHz grid); the ``sequence`` counter makes
same-cycle events fire in scheduling order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from ..errors import ExecutionError


class Engine:
    """A minimal deterministic discrete-event scheduler."""

    def __init__(self):
        self._queue = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise ExecutionError(
                "cannot schedule in the past: {} < {}".format(time, self.now))
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ExecutionError("negative delay: {}".format(delay))
        self.at(self.now + delay, callback)

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time after the run.  ``max_events`` guards
        against runaway programs (e.g. the infinite loops of Figure 12 when
        no horizon is given).
        """
        processed = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            callback()
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise ExecutionError(
                    "exceeded max_events={} (runaway program?)".format(max_events))
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self):
        return "Engine(now={}, pending={})".format(self.now, self.pending)
