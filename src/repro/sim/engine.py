"""Discrete-event simulation kernel.

All of CACTUS-Light's moving parts (HISQ cores, routers, links, the quantum
device bridge) are driven by one :class:`Engine`.  Time is an integer number
of TCU cycles (4 ns at the paper's 250 MHz grid); events scheduled for the
same cycle fire in scheduling order, which keeps runs deterministic.

Events are bucketed per cycle: the heap holds one entry per *distinct*
timestamp and each bucket is a FIFO of callbacks.  Dense workloads schedule
many events on the same cycle (every core stepping, every message landing on
the grid), so draining a whole cycle costs one heap pop instead of one per
event — scheduling order within the cycle is exactly FIFO order, preserving
the determinism of the old ``(time, sequence)`` heap.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Callable, Dict, List, Optional

from ..errors import ExecutionError


class Engine:
    """A minimal deterministic discrete-event scheduler."""

    def __init__(self):
        self._times: List[int] = []       # heap of distinct pending cycles
        self._buckets: Dict[int, deque] = {}
        self._pending = 0
        self.now = 0
        self.events_processed = 0

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise ExecutionError(
                "cannot schedule in the past: {} < {}".format(time, self.now))
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = deque()
            _heappush(self._times, time)
        bucket.append(callback)
        self._pending += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ExecutionError("negative delay: {}".format(delay))
        self.at(self.now + delay, callback)

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time after the run.  ``max_events`` guards
        against runaway programs (e.g. the infinite loops of Figure 12 when
        no horizon is given).
        """
        times = self._times
        buckets = self._buckets
        processed = 0
        while times:
            time = times[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            _heappop(times)
            self.now = time
            # Drain the whole cycle.  Callbacks may append to this same
            # bucket via ``after(0, ...)``; the while-loop picks those up in
            # scheduling order before the cycle is considered done.  If a
            # callback raises, the cycle's remaining events must stay
            # reachable — re-register the timestamp so a later run() resumes
            # exactly where this one stopped.
            bucket = buckets[time]
            try:
                while bucket:
                    callback = bucket.popleft()
                    self._pending -= 1
                    callback()
                    processed += 1
                    self.events_processed += 1
                    if processed > max_events:
                        raise ExecutionError(
                            "exceeded max_events={} (runaway program?)".format(
                                max_events))
            finally:
                if bucket:
                    _heappush(times, time)
                else:
                    del buckets[time]
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return self._pending

    def __repr__(self):
        return "Engine(now={}, pending={})".format(self.now, self.pending)
