"""Timing Event Logging Format (TELF).

The paper verifies its CACTUS-Light simulator against the FPGA using TELF
traces (section 6.4.1).  Our TELF log records every externally visible
timed event (codeword emission, sync booking/completion, message
departure/arrival, measurement) with its cycle timestamp, and can render
oscilloscope-style ASCII channel traces like Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TelfRecord:
    """One timing event.

    ``kind`` is one of ``cw``, ``sync_book``, ``sync_done``, ``msg_tx``,
    ``msg_rx``, ``meas``, ``stall``; ``unit`` names the emitting component;
    ``port``/``value`` carry the codeword fields where applicable.
    """

    time: int
    unit: str
    kind: str
    port: int = -1
    value: int = 0
    note: str = ""

    def line(self) -> str:
        """Render one canonical TELF text line."""
        return "{:>10d} {:<16s} {:<10s} port={:<4d} value={:<6d} {}".format(
            self.time, self.unit, self.kind, self.port, self.value,
            self.note).rstrip()


class _DropAll(list):
    """A list that silently drops appends (disabled TELF recording)."""

    __slots__ = ()

    def append(self, item):
        pass

    def extend(self, items):
        pass


class TelfLog:
    """Append-only store of :class:`TelfRecord` with query helpers.

    Entries are buffered as plain tuples — ``log`` sits on the simulation
    hot path (one call per emitted codeword, sync and message), and a
    tuple append is several times cheaper than constructing a frozen
    dataclass.  :attr:`records` materializes :class:`TelfRecord` objects
    lazily and caches them, so query helpers and tests see the same API
    as before.

    ``enabled=False`` drops every entry at append time — used by
    timing-only sweep cells (mirroring ``record_gate_log``), whose
    results never read the trace.
    """

    def __init__(self, enabled: bool = True):
        self._raw: List[tuple] = [] if enabled else _DropAll()
        self._materialized: List[TelfRecord] = []

    @property
    def enabled(self) -> bool:
        """False when this log drops entries instead of recording them."""
        return not isinstance(self._raw, _DropAll)

    @property
    def records(self) -> List[TelfRecord]:
        """All records, materialized on demand."""
        done = len(self._materialized)
        if done != len(self._raw):
            self._materialized.extend(
                TelfRecord(*raw) for raw in self._raw[done:])
        return self._materialized

    def log(self, time: int, unit: str, kind: str, port: int = -1,
            value: int = 0, note: str = "") -> None:
        """Append one record."""
        self._raw.append((time, unit, kind, port, value, note))

    def __len__(self):
        return len(self._raw)

    def __iter__(self):
        return iter(self.records)

    def filter(self, unit: Optional[str] = None, kind: Optional[str] = None,
               port: Optional[int] = None) -> List[TelfRecord]:
        """Return records matching all given criteria."""
        out = []
        for rec in self.records:
            if unit is not None and rec.unit != unit:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if port is not None and rec.port != port:
                continue
            out.append(rec)
        return out

    def emissions(self, unit: Optional[str] = None) -> List[TelfRecord]:
        """All codeword emissions, optionally restricted to one unit."""
        return self.filter(unit=unit, kind="cw")

    def dump(self) -> str:
        """Full text dump, time-ordered."""
        return "\n".join(rec.line()
                         for rec in sorted(self.records,
                                           key=lambda r: (r.time, r.unit)))

    # -- Figure-13 style rendering ------------------------------------------

    def ascii_waveform(self, channels: List[Tuple[str, int]], t0: int = 0,
                       t1: Optional[int] = None, resolution: int = 1,
                       width: int = 100) -> str:
        """Render pulse trains as ASCII, one row per (unit, port) channel.

        Each codeword emission paints a ``#`` at its time bucket, evoking the
        oscilloscope traces of Figure 13.
        """
        if t1 is None:
            t1 = max((r.time for r in self.records), default=0) + 1
        span = max(1, t1 - t0)
        resolution = max(resolution, -(-span // width))
        buckets = -(-span // resolution)
        lines = []
        for unit, port in channels:
            row = ["_"] * buckets
            for rec in self.filter(unit=unit, kind="cw", port=port):
                if t0 <= rec.time < t1:
                    row[(rec.time - t0) // resolution] = "#"
            lines.append("{:>16s}.p{:<3d} |{}|".format(unit, port, "".join(row)))
        header = "time {}..{} cycles, {} cycles/char".format(t0, t1, resolution)
        return header + "\n" + "\n".join(lines)


@dataclass
class ExecutionStats:
    """Aggregate counters collected during one simulation run."""

    instructions_executed: int = 0
    codewords_emitted: int = 0
    syncs_completed: int = 0
    sync_stall_cycles: int = 0
    messages_sent: int = 0
    pipeline_stall_cycles: int = 0
    timing_violations: int = 0
    makespan_cycles: int = 0
    #: Engine/queue telemetry (deterministic; filled by ``System.run``).
    events_processed: int = 0
    engine_far_events: int = 0
    engine_window_advances: int = 0
    engine_max_pending: int = 0
    max_queue_depth: int = 0
    per_core: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add_core(self, name: str, **counters) -> None:
        """Merge per-core counters into the aggregate."""
        self.per_core[name] = dict(counters)
        self.instructions_executed += counters.get("instructions", 0)
        self.codewords_emitted += counters.get("codewords", 0)
        self.syncs_completed += counters.get("syncs", 0)
        self.sync_stall_cycles += counters.get("sync_stall", 0)
        self.messages_sent += counters.get("messages", 0)
        self.timing_violations += counters.get("violations", 0)
