"""System builder: assemble cores, routers, links and the device bridge.

A :class:`ControlSystem` is the CACTUS-Light top level: it owns the event
engine, instantiates one :class:`~repro.core.node.HISQCore` per controller
over the hybrid topology, one :class:`~repro.network.router.Router` per
tree node, the lock-step baseline's central hub, and a
:class:`~repro.sim.device.QuantumDevice`.  It also implements the *fabric*
interface through which cores and routers exchange signals and messages
with calibrated latencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.config import CENTRAL_ADDRESS, CoreConfig
from ..core.node import HISQCore
from ..errors import ExecutionError, SynchronizationError
from ..isa.program import Program
from ..network.messages import BookingMessage, TimePointMessage
from ..network.router import Router, SyncGroupInfo
from ..network.topology import Topology, build_topology
from .config import SimulationConfig
from .device import QuantumDevice
from .engine import Engine
from .telf import ExecutionStats, TelfLog


class ControlSystem:
    """A full distributed quantum control system under simulation."""

    def __init__(self, num_controllers: int,
                 config: Optional[SimulationConfig] = None,
                 core_config: Optional[CoreConfig] = None,
                 mesh_kind: str = "line",
                 backend=None,
                 topology: Optional[Topology] = None,
                 device_seed: int = 12345,
                 strict_timing: bool = False,
                 record_gate_log: bool = True,
                 record_telf: bool = True,
                 noise_model=None, noise_seed: int = 0x5EED):
        self.config = config or SimulationConfig()
        self.core_config = core_config or CoreConfig(
            event_queue_depth=self.config.event_queue_depth,
            feedback_resync_cycles=self.config.feedback_resync_cycles,
            classical_cpi=self.config.classical_cpi)
        self.engine = Engine()
        self.telf = TelfLog(enabled=record_telf)
        self.topology = topology or build_topology(
            num_controllers, fanout=self.config.router_fanout,
            mesh_kind=mesh_kind,
            neighbor_link_cycles=self.config.neighbor_link_cycles,
            router_hop_cycles=self.config.router_hop_cycles)
        self.cores: Dict[int, HISQCore] = {}
        for address in range(self.topology.num_controllers):
            core = HISQCore("C{}".format(address), address, self.engine,
                            self.telf, config=self.core_config,
                            strict_timing=strict_timing)
            core.fabric = self
            self.cores[address] = core
        self.routers: Dict[int, Router] = {}
        for address in self.topology.routers:
            router = Router("R{}".format(address), address, self.engine,
                            self.telf,
                            process_cycles=self.config.router_process_cycles)
            router.fabric = self
            router.parent_address = self.topology.parent.get(address)
            self.routers[address] = router
        self.device = QuantumDevice(self.engine, self.telf, self.config,
                                    backend=backend, seed=device_seed,
                                    record_gate_log=record_gate_log,
                                    noise_model=noise_model,
                                    noise_seed=noise_seed)
        self.codeword_tables: Dict[int, dict] = {a: {} for a in self.cores}
        self.sync_groups: Dict[int, List[int]] = {}
        self._group_target: Dict[int, int] = {}
        self._epochs: Dict[tuple, int] = {}
        self.unmapped_codewords = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def load_program(self, address: int, program: Program) -> None:
        """Install a HISQ binary on controller ``address``."""
        self.cores[address].load(program)

    def set_codeword_table(self, address: int, table: dict) -> None:
        """Install the (port, codeword) -> action table of one board."""
        self.codeword_tables[address] = dict(table)

    def register_sync_group(self, group_id: int,
                            members: Iterable[int]) -> int:
        """Register a region sync group; returns the target router address.

        Configures every router on the members' paths to the lowest common
        ancestor with the expected-children sets and broadcast bounds
        (Figure 8 bookkeeping).
        """
        members = sorted(set(members))
        if len(members) < 2:
            raise SynchronizationError(
                "sync group {} needs at least two members".format(group_id))
        target = self.topology.common_ancestor(members)
        self.sync_groups[group_id] = members
        self._group_target[group_id] = target
        hop = self.config.router_hop_cycles
        process = self.config.router_process_cycles
        # Which routers relay this group, and via which children?
        expected: Dict[int, set] = {}
        for member in members:
            path = self.topology.path_to_ancestor(member, target)
            for child, parent in zip(path, path[1:]):
                expected.setdefault(parent, set()).add(child)
        for router_addr, children in expected.items():
            member_hops = [
                len(self.topology.path_to_ancestor(m, router_addr)) - 1
                for m in members
                if router_addr in self.topology.path_to_ancestor(m, target)]
            down_bound = max(h * hop + max(0, h - 1) * process
                             for h in member_hops)
            self.routers[router_addr].configure_group(SyncGroupInfo(
                group=group_id,
                expected=sorted(children),
                member_children=sorted(children),
                is_destination=(router_addr == target),
                down_bound=down_bound))
        return target

    # ------------------------------------------------------------------
    # Fabric interface (called by cores and routers)
    # ------------------------------------------------------------------

    def sync_signal(self, core: HISQCore, target: int) -> int:
        """Send a 1-bit nearby-sync signal; return the countdown N."""
        if target not in self.cores:
            raise SynchronizationError(
                "{}: sync target {} is not a controller".format(core.name,
                                                                target))
        if not self.topology.are_neighbors(core.address, target):
            raise SynchronizationError(
                "{}: sync target {} is not a mesh neighbor".format(
                    core.name, target))
        latency = self.config.neighbor_link_cycles
        peer = self.cores[target]
        source = core.address
        self.engine.after(latency,
                          lambda: peer.sync_unit.receive_signal(source))
        return latency

    def send_booking(self, core: HISQCore, group: int,
                     time_point: int) -> None:
        """Forward a region-sync booking up the tree toward the target."""
        if group not in self.sync_groups:
            raise SynchronizationError(
                "{}: booking for unregistered group {}".format(core.name,
                                                               group))
        if core.address not in self.sync_groups[group]:
            raise SynchronizationError(
                "{}: not a member of sync group {}".format(core.name, group))
        key = (core.address, group)
        epoch = self._epochs.get(key, 0)
        self._epochs[key] = epoch + 1
        parent = self.topology.parent[core.address]
        message = BookingMessage(group, epoch, core.address, time_point)
        router = self.routers[parent]
        self.engine.after(self.config.router_hop_cycles,
                          lambda: router.receive_booking(message))

    def router_to_parent(self, router: Router, message: BookingMessage
                         ) -> None:
        """One hop up the tree."""
        parent = self.routers[router.parent_address]
        self.engine.after(self.config.router_hop_cycles,
                          lambda: parent.receive_booking(message))

    def router_to_children(self, router: Router, children: List[int],
                           message: TimePointMessage) -> None:
        """Broadcast a Tm one hop down the tree."""
        for child in children:
            if child in self.routers:
                target_router = self.routers[child]
                self.engine.after(
                    self.config.router_hop_cycles,
                    lambda r=target_router: r.receive_time_point(message))
            else:
                core = self.cores[child]
                self.engine.after(
                    self.config.router_hop_cycles,
                    lambda c=core: c.sync_unit.receive_time_point(
                        message.time_point))

    def send_message(self, core: HISQCore, destination: int,
                     value: int) -> None:
        """Deliver a classical data message with topology-derived latency."""
        if destination == CENTRAL_ADDRESS:
            # Lock-step baseline: the central controller rebroadcasts the
            # value to every controller with a constant latency,
            # independent of system size (section 6.4.3).
            delay = self.config.baseline_broadcast_cycles
            cores = list(self.cores.values())
            self.engine.after(delay, lambda: [
                c.deliver_message(CENTRAL_ADDRESS, value) for c in cores])
            return
        if destination not in self.cores:
            raise ExecutionError(
                "{}: message to unknown controller {}".format(core.name,
                                                              destination))
        latency = self.topology.message_latency_cycles(core.address,
                                                       destination)
        target = self.cores[destination]
        source = core.address
        self.engine.after(latency,
                          lambda: target.deliver_message(source, value))

    def emit_codeword(self, core: HISQCore, port: int, codeword: int) -> None:
        """Decode a codeword emission through the board's table."""
        table = self.codeword_tables.get(core.address)
        action = table.get((port, codeword)) if table else None
        if action is None:
            self.unmapped_codewords += 1
            return
        self.device.handle(core, action)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start_all(self, at: int = 0) -> None:
        """Start every controller that has a program loaded."""
        for core in self.cores.values():
            if len(core.program.instructions):
                core.start(at)

    def run(self, until: Optional[int] = None,
            allow_blocked: bool = False) -> ExecutionStats:
        """Start all cores, run to completion, and collect statistics."""
        self.start_all()
        self.engine.run(until=until)
        blocked = [core.name for core in self.cores.values()
                   if len(core.program.instructions) and not core.drained]
        if blocked and until is None and not allow_blocked:
            raise ExecutionError(
                "deadlock: controllers still blocked after the event queue "
                "drained: {}".format(", ".join(sorted(blocked))))
        stats = ExecutionStats()
        for core in self.cores.values():
            stats.add_core(core.name, **core.counters())
        stats.makespan_cycles = max(
            (core.last_event_time for core in self.cores.values()),
            default=0)
        wheel = self.engine.wheel_stats()
        stats.events_processed = wheel["events_processed"]
        stats.engine_far_events = wheel["far_events"]
        stats.engine_window_advances = wheel["window_advances"]
        stats.engine_max_pending = wheel["max_pending"]
        stats.max_queue_depth = max(
            (core.queue_high_water for core in self.cores.values()),
            default=0)
        return stats

    @property
    def makespan_ns(self) -> float:
        """Wall-clock of the last emitted event, in nanoseconds."""
        last = max((core.last_event_time for core in self.cores.values()),
                   default=0)
        return self.config.ns(last)
