"""System builder: assemble cores, routers, links and the device bridge.

A :class:`ControlSystem` is the CACTUS-Light top level: it owns the event
engine, instantiates one :class:`~repro.core.node.HISQCore` per controller
over the hybrid topology, one :class:`~repro.network.router.Router` per
tree node, the lock-step baseline's central hub, and a
:class:`~repro.sim.device.QuantumDevice`.  It also implements the *fabric*
interface through which cores and routers exchange signals and messages
with calibrated latencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.config import CENTRAL_ADDRESS, CoreConfig
from ..core.node import HISQCore
from ..errors import ExecutionError, SynchronizationError
from ..fastpath import sync_plan_enabled
from ..isa.decoded import decode_program
from ..isa.program import Program
from ..network.messages import BookingMessage, TimePointMessage
from ..network.router import ABANDONED_EPOCHS, Router, SyncGroupInfo
from ..network.sync_plan import (SYNC_PLAN_RESOLVED, PlanDelivery,
                                 SyncPlanGroup, build_sync_plan_group)
from ..network.topology import Topology, build_topology
from .config import SimulationConfig
from .device import QuantumDevice
from .engine import Engine
from .telf import ExecutionStats, TelfLog


class _DeliverMessage:
    """One in-flight classical message (latency varies per source/dest
    pair, so the payload must ride with the event — but as one slotted
    object, not a closure plus captured cells)."""

    __slots__ = ("core", "source", "value")

    def __init__(self, core: HISQCore, source: int, value: int):
        self.core = core
        self.source = source
        self.value = value

    def __call__(self) -> None:
        self.core.deliver_message(self.source, self.value)


class _FanDown:
    """One coalesced Tm broadcast hop: every child of one router in one
    engine event (the cascade used to schedule one event + one lambda
    per child for the same cycle)."""

    __slots__ = ("deliveries",)

    def __init__(self, deliveries):
        self.deliveries = deliveries

    def __call__(self) -> None:
        for callback, arg in self.deliveries:
            callback(arg)


class ControlSystem:
    """A full distributed quantum control system under simulation."""

    def __init__(self, num_controllers: int,
                 config: Optional[SimulationConfig] = None,
                 core_config: Optional[CoreConfig] = None,
                 mesh_kind: str = "line",
                 backend=None,
                 topology: Optional[Topology] = None,
                 device_seed: int = 12345,
                 strict_timing: bool = False,
                 record_gate_log: bool = True,
                 record_telf: bool = True,
                 noise_model=None, noise_seed: int = 0x5EED):
        self.config = config or SimulationConfig()
        self.core_config = core_config or CoreConfig(
            event_queue_depth=self.config.event_queue_depth,
            feedback_resync_cycles=self.config.feedback_resync_cycles,
            classical_cpi=self.config.classical_cpi)
        self.engine = Engine()
        self.telf = TelfLog(enabled=record_telf)
        self.topology = topology or build_topology(
            num_controllers, fanout=self.config.router_fanout,
            mesh_kind=mesh_kind,
            neighbor_link_cycles=self.config.neighbor_link_cycles,
            router_hop_cycles=self.config.router_hop_cycles)
        self.cores: Dict[int, HISQCore] = {}
        for address in range(self.topology.num_controllers):
            core = HISQCore("C{}".format(address), address, self.engine,
                            self.telf, config=self.core_config,
                            strict_timing=strict_timing)
            core.fabric = self
            self.cores[address] = core
        self.routers: Dict[int, Router] = {}
        for address in self.topology.routers:
            router = Router("R{}".format(address), address, self.engine,
                            self.telf,
                            process_cycles=self.config.router_process_cycles)
            router.fabric = self
            router.parent_address = self.topology.parent.get(address)
            self.routers[address] = router
        self.device = QuantumDevice(self.engine, self.telf, self.config,
                                    backend=backend, seed=device_seed,
                                    record_gate_log=record_gate_log,
                                    noise_model=noise_model,
                                    noise_seed=noise_seed)
        self.codeword_tables: Dict[int, dict] = {a: {} for a in self.cores}
        self.sync_groups: Dict[int, List[int]] = {}
        self._group_target: Dict[int, int] = {}
        self._epochs: Dict[tuple, int] = {}
        self.unmapped_codewords = 0
        #: Compiled sync plans (:mod:`repro.network.sync_plan`), one per
        #: registered group, plus their per-level sync-unit fan-out lists
        #: resolved once at registration time.
        self._sync_plans: Dict[int, SyncPlanGroup] = {}
        self._sync_plan_levels: Dict[int, list] = {}
        #: (group, epoch) -> [bookings seen, max T, max dest arrival].
        self._sync_plan_state: Dict[tuple, list] = {}
        #: Decided once at :meth:`start_all` (all programs loaded by
        #: then); None = not decided yet.
        self._sync_plan_active: Optional[bool] = None
        self.sync_plan_resolved = 0
        self.abandoned_sync_epochs = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def load_program(self, address: int, program: Program) -> None:
        """Install a HISQ binary on controller ``address``."""
        self.cores[address].load(program)

    def set_codeword_table(self, address: int, table: dict) -> None:
        """Install the (port, codeword) -> action table of one board."""
        self.codeword_tables[address] = dict(table)

    def register_sync_group(self, group_id: int,
                            members: Iterable[int]) -> int:
        """Register a region sync group; returns the target router address.

        Configures every router on the members' paths to the lowest common
        ancestor with the expected-children sets and broadcast bounds
        (Figure 8 bookkeeping).
        """
        members = sorted(set(members))
        if len(members) < 2:
            raise SynchronizationError(
                "sync group {} needs at least two members".format(group_id))
        target = self.topology.common_ancestor(members)
        self.sync_groups[group_id] = members
        self._group_target[group_id] = target
        hop = self.config.router_hop_cycles
        process = self.config.router_process_cycles
        # Which routers relay this group, and via which children?
        expected: Dict[int, set] = {}
        for member in members:
            path = self.topology.path_to_ancestor(member, target)
            for child, parent in zip(path, path[1:]):
                expected.setdefault(parent, set()).add(child)
        target_down_bound = 0
        for router_addr, children in expected.items():
            member_hops = [
                len(self.topology.path_to_ancestor(m, router_addr)) - 1
                for m in members
                if router_addr in self.topology.path_to_ancestor(m, target)]
            down_bound = max(h * hop + max(0, h - 1) * process
                             for h in member_hops)
            if router_addr == target:
                target_down_bound = down_bound
            self.routers[router_addr].configure_group(SyncGroupInfo(
                group=group_id,
                expected=sorted(children),
                member_children=sorted(children),
                is_destination=(router_addr == target),
                down_bound=down_bound))
        plan = build_sync_plan_group(group_id, members, target,
                                     self.topology, hop, process,
                                     target_down_bound)
        self._sync_plans[group_id] = plan
        self._sync_plan_levels[group_id] = [
            (delay, tuple(self.cores[m].sync_unit for m in addrs))
            for delay, addrs in plan.levels]
        return target

    # ------------------------------------------------------------------
    # Fabric interface (called by cores and routers)
    # ------------------------------------------------------------------

    def sync_signal(self, core: HISQCore, target: int) -> int:
        """Send a 1-bit nearby-sync signal; return the countdown N."""
        if target not in self.cores:
            raise SynchronizationError(
                "{}: sync target {} is not a controller".format(core.name,
                                                                target))
        if not self.topology.are_neighbors(core.address, target):
            raise SynchronizationError(
                "{}: sync target {} is not a mesh neighbor".format(
                    core.name, target))
        latency = self.config.neighbor_link_cycles
        peer = self.cores[target]
        # Uniform latency => deque order is firing order; the payload
        # travels through the SyncUnit's FIFO behind a prebound callback
        # instead of a per-signal closure.
        peer.sync_unit.enqueue_signal(core.address)
        self.engine.after(latency, peer.sync_unit.deliver_signal)
        return latency

    def send_booking(self, core: HISQCore, group: int,
                     time_point: int) -> None:
        """Forward a region-sync booking up the tree toward the target."""
        if group not in self.sync_groups:
            raise SynchronizationError(
                "{}: booking for unregistered group {}".format(core.name,
                                                               group))
        if core.address not in self.sync_groups[group]:
            raise SynchronizationError(
                "{}: not a member of sync group {}".format(core.name, group))
        key = (core.address, group)
        epoch = self._epochs.get(key, 0)
        self._epochs[key] = epoch + 1
        if self._sync_plan_active:
            self._plan_booking(group, epoch, core.address, time_point)
            return
        parent = self.topology.parent[core.address]
        router = self.routers[parent]
        router.enqueue_booking(
            BookingMessage(group, epoch, core.address, time_point))
        self.engine.after(self.config.router_hop_cycles,
                          router.deliver_booking)

    def _plan_booking(self, group: int, epoch: int, member: int,
                      time_point: int) -> None:
        """Fold one booking into the compiled plan; resolve on the last.

        Mirrors the cascade arithmetically (see
        :mod:`repro.network.sync_plan` for the derivation): the epoch
        resolves the moment its last member books, scheduling one
        batched delivery event per tree depth at the exact cycles the
        router broadcasts would have reached those members — and keeps
        the involved routers' diagnostic counters in step.
        """
        plan = self._sync_plans[group]
        arrival = self.engine.now + plan.up_delay[member]
        state_key = (group, epoch)
        entry = self._sync_plan_state.get(state_key)
        if entry is None:
            entry = self._sync_plan_state[state_key] = [0, time_point,
                                                        arrival]
        else:
            if time_point > entry[1]:
                entry[1] = time_point
            if arrival > entry[2]:
                entry[2] = arrival
        entry[0] += 1
        if entry[0] < plan.member_count:
            return
        del self._sync_plan_state[state_key]
        partial_max, dest_arrival = entry[1], entry[2]
        tm = max(partial_max, dest_arrival + plan.process + plan.down_bound)
        self.sync_plan_resolved += 1
        SYNC_PLAN_RESOLVED.value += 1
        routers = self.routers
        for address, count in plan.booking_counts:
            routers[address].bookings_handled += count
        for address in plan.broadcast_routers:
            routers[address].broadcasts_sent += 1
        at = self.engine.at
        for delay, units in self._sync_plan_levels[group]:
            at(dest_arrival + delay, PlanDelivery(units, tm))

    def router_to_parent(self, router: Router, message: BookingMessage
                         ) -> None:
        """One hop up the tree."""
        parent = self.routers[router.parent_address]
        parent.enqueue_booking(message)
        self.engine.after(self.config.router_hop_cycles,
                          parent.deliver_booking)

    def router_to_children(self, router: Router, children: List[int],
                           message: TimePointMessage) -> None:
        """Broadcast a Tm one hop down the tree.

        All children sit one uniform hop away, so the fan-out is one
        coalesced engine event delivering in the given (sorted) order —
        identical cycle, identical relative order, N-1 fewer events and
        zero per-child closures."""
        routers = self.routers
        cores = self.cores
        deliveries = [
            (routers[child].receive_time_point, message)
            if child in routers
            else (cores[child].sync_unit.receive_time_point,
                  message.time_point)
            for child in children]
        self.engine.after(self.config.router_hop_cycles,
                          _FanDown(deliveries))

    def send_message(self, core: HISQCore, destination: int,
                     value: int) -> None:
        """Deliver a classical data message with topology-derived latency."""
        if destination == CENTRAL_ADDRESS:
            # Lock-step baseline: the central controller rebroadcasts the
            # value to every controller with a constant latency,
            # independent of system size (section 6.4.3).
            delay = self.config.baseline_broadcast_cycles
            cores = list(self.cores.values())
            self.engine.after(delay, lambda: [
                c.deliver_message(CENTRAL_ADDRESS, value) for c in cores])
            return
        if destination not in self.cores:
            raise ExecutionError(
                "{}: message to unknown controller {}".format(core.name,
                                                              destination))
        latency = self.topology.message_latency_cycles(core.address,
                                                       destination)
        self.engine.after(latency, _DeliverMessage(
            self.cores[destination], core.address, value))

    def emit_codeword(self, core: HISQCore, port: int, codeword: int) -> None:
        """Decode a codeword emission through the board's table."""
        table = self.codeword_tables.get(core.address)
        action = table.get((port, codeword)) if table else None
        if action is None:
            self.unmapped_codewords += 1
            return
        self.device.handle(core, action)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _sync_plans_applicable(self) -> bool:
        """Whether compiled sync plans may replace the router cascade.

        The provably safe class only: every loaded program recv-free
        (no feedback can observe message interleaving — the lane
        fast-forward class), no quantum backend, gate log off, TELF off
        (so nothing order- or record-sensitive watches the fabric), and
        the escape hatches (``REPRO_NO_SYNC_PLAN``,
        ``REPRO_NO_FASTPATH``) unset.  A program that fails to decode
        falls back to the cascade rather than erroring.
        """
        if not self._sync_plans or not sync_plan_enabled():
            return False
        if self.device.backend is not None or self.device.record_gate_log \
                or self.telf.enabled:
            return False
        try:
            return all(not decode_program(core.program).has_recv
                       for core in self.cores.values()
                       if len(core.program.instructions))
        except Exception:
            return False

    def start_all(self, at: int = 0) -> None:
        """Start every controller that has a program loaded."""
        if self._sync_plan_active is None:
            self._sync_plan_active = self._sync_plans_applicable()
        for core in self.cores.values():
            if len(core.program.instructions):
                core.start(at)

    def drain_sync_state(self) -> int:
        """Drop rendezvous state nothing can complete; return the count.

        Engine-teardown hook: once the event queue has drained, any
        booking bucket still sitting in a router — or any partially
        booked plan epoch — belongs to a crashed/aborted member and
        would otherwise leak for the system's lifetime.  (A rendezvous
        spanning several routers counts once per partial bucket; the
        number is a leak diagnostic, not an epoch census.)
        """
        abandoned = 0
        for router in self.routers.values():
            abandoned += router.abandon()
        stranded = len(self._sync_plan_state)
        if stranded:
            self._sync_plan_state.clear()
            ABANDONED_EPOCHS.value += stranded
            abandoned += stranded
        return abandoned

    def run(self, until: Optional[int] = None,
            allow_blocked: bool = False) -> ExecutionStats:
        """Start all cores, run to completion, and collect statistics."""
        self.start_all()
        self.engine.run(until=until)
        if until is None:
            # Bounded runs may legitimately hold in-flight sync state
            # they would complete if resumed; full drains cannot.
            self.abandoned_sync_epochs = self.drain_sync_state()
        blocked = [core.name for core in self.cores.values()
                   if len(core.program.instructions) and not core.drained]
        if blocked and until is None and not allow_blocked:
            raise ExecutionError(
                "deadlock: controllers still blocked after the event queue "
                "drained: {}".format(", ".join(sorted(blocked))))
        stats = ExecutionStats()
        for core in self.cores.values():
            stats.add_core(core.name, **core.counters())
        stats.makespan_cycles = max(
            (core.last_event_time for core in self.cores.values()),
            default=0)
        wheel = self.engine.wheel_stats()
        stats.events_processed = wheel["events_processed"]
        stats.engine_far_events = wheel["far_events"]
        stats.engine_window_advances = wheel["window_advances"]
        stats.engine_max_pending = wheel["max_pending"]
        stats.max_queue_depth = max(
            (core.queue_high_water for core in self.cores.values()),
            default=0)
        return stats

    @property
    def makespan_ns(self) -> float:
        """Wall-clock of the last emitted event, in nanoseconds."""
        last = max((core.last_event_time for core in self.cores.values()),
                   default=0)
        return self.config.ns(last)
