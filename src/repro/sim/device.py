"""Quantum-device bridge: codewords in, gates/measurement results out.

Each board carries a *codeword table* mapping ``(port, codeword)`` to an
action — the hardware-configuration side of HISQ's "particular codewords to
particular ports" abstraction (Insight #3).  The same codeword can mean an
X gate on one board and a readout discrimination on another (section 6.1).

The device bridge

* applies gate actions to an attached quantum-state backend (statevector,
  stabilizer, or none for timing-only runs) in wall-clock order,
* matches the *halves* of multi-controller two-qubit gates and records
  their arrival skew (zero under correct synchronization — the end-to-end
  check that BISP works),
* samples measurement outcomes and delivers them back to the measuring
  board's message unit after the measurement duration, and
* tracks per-qubit activity windows for the decoherence/fidelity model.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import ACQ_ADDRESS
from ..errors import ExecutionError
from .config import SimulationConfig


@dataclass(frozen=True)
class GateAction:
    """Apply gate ``name`` on ``qubits``; multi-controller gates set
    ``total_halves`` > 1 and each controller's codeword carries one half."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    half: int = 0
    total_halves: int = 1


_GATE_ACTION_LIMIT = 1 << 15
_gate_actions: Dict[tuple, GateAction] = {}


def gate_action(name: str, qubits: Tuple[int, ...],
                params: Tuple[float, ...] = (), half: int = 0,
                total_halves: int = 1) -> GateAction:
    """A shared :class:`GateAction` (frozen, so identical ones can be
    interned — compilers emit the same action for every repeat of a gate
    on the same qubits)."""
    key = (name, qubits, params, half, total_halves)
    action = _gate_actions.get(key)
    if action is None:
        if len(_gate_actions) >= _GATE_ACTION_LIMIT:
            _gate_actions.clear()
        action = _gate_actions[key] = GateAction(name, qubits, params,
                                                 half, total_halves)
    return action


@dataclass(frozen=True)
class MeasureAction:
    """Trigger measurement of ``qubit``; the result returns to the board."""

    qubit: int


@dataclass(frozen=True)
class MarkerAction:
    """Raise a marker/trigger line (no quantum effect; shows up in TELF)."""

    tag: str = ""


@dataclass
class QubitActivity:
    """Wall-clock activity window of one qubit (cycles)."""

    first_start: Optional[int] = None
    last_end: int = 0
    gate_count: int = 0

    def note(self, start: int, duration: int) -> None:
        if self.first_start is None or start < self.first_start:
            self.first_start = start
        self.last_end = max(self.last_end, start + duration)
        self.gate_count += 1

    @property
    def lifetime(self) -> int:
        """Cycles from first operation start to last operation end."""
        if self.first_start is None:
            return 0
        return self.last_end - self.first_start


class QuantumDevice:
    """Shared device model attached to a control system."""

    def __init__(self, engine, telf, config: SimulationConfig,
                 backend=None, seed: int = 12345,
                 record_gate_log: bool = True,
                 noise_model=None, noise_seed: int = 0x5EED):
        self.engine = engine
        self.telf = telf
        self.config = config
        self.backend = backend
        self.rng = np.random.default_rng(seed)
        #: optional :class:`repro.noise.model.NoiseModel` (duck-typed to
        #: avoid a sim <-> noise import cycle); draws come from a
        #: dedicated stream so enabling noise never perturbs the
        #: existing measurement-sampling RNG.
        self.noise_model = noise_model
        self.noise_rng = np.random.default_rng(noise_seed)
        self.noise_events = 0
        #: (name, qubits) -> resolved channel list; the model is frozen,
        #: so identical gate slots reuse one channel object instead of
        #: rebuilding (validate + sort) on every event in the hot loop.
        self._noise_channels: Dict[tuple, list] = {}
        self.record_gate_log = record_gate_log
        self.gate_log: List[Tuple[int, str, Tuple[int, ...]]] = []
        #: gate-arity -> cycles (avoids a float divmod per gate event).
        self._gate_cycles_memo: Dict[int, int] = {}
        self._measurement_cycles = config.measurement_cycles
        self.activity: Dict[int, QubitActivity] = defaultdict(QubitActivity)
        self._pending_halves: Dict[tuple, dict] = {}
        self._forced: Dict[int, deque] = defaultdict(deque)
        self.gate_skew_events = 0
        self.max_gate_skew = 0
        self.measurements = 0
        self.gates_applied = 0

    # -- configuration ---------------------------------------------------------

    def force_outcome(self, qubit: int, *outcomes: int) -> None:
        """Queue deterministic measurement outcomes for ``qubit`` (FIFO)."""
        self._forced[qubit].extend(int(o) for o in outcomes)

    # -- action handling -------------------------------------------------------

    def handle(self, core, action) -> None:
        """Process one decoded codeword action emitted by ``core``."""
        now = self.engine.now
        cls = action.__class__
        if cls is GateAction:
            if action.total_halves <= 1:
                self._apply_gate(action.name, action.qubits, action.params,
                                 now)
                return
            self._handle_half(action, now)
            return
        if cls is MeasureAction:
            self._handle_measure(core, action.qubit, now)
            return
        # Subclass fallbacks (the identity checks above cover the
        # built-in action types).
        if isinstance(action, MarkerAction):
            return
        if isinstance(action, MeasureAction):
            self._handle_measure(core, action.qubit, now)
            return
        if isinstance(action, GateAction):
            if action.total_halves <= 1:
                self._apply_gate(action.name, action.qubits, action.params,
                                 now)
                return
            self._handle_half(action, now)
            return
        raise ExecutionError("unknown codeword action {!r}".format(action))

    def _handle_half(self, action: GateAction, now: int) -> None:
        # Halves pair FIFO per (gate, qubits): repeated instances of the
        # same gate (e.g. on a shared ancilla bus) match in program order.
        # Nonzero arrival skew is a synchronization defect and is recorded;
        # under a correct scheme it is always zero (asserted by the tests).
        key = (action.name, action.qubits)
        entry = self._pending_halves.get(key)
        if entry is None:
            entry = self._pending_halves[key] = [
                deque() for _ in range(action.total_halves)]
        entry[action.half].append(now)
        if action.total_halves == 2:
            first, second = entry
            if not first or not second:
                return
            t0 = first.popleft()
            t1 = second.popleft()
            if not first and not second:
                del self._pending_halves[key]
            skew = t1 - t0 if t1 >= t0 else t0 - t1
        else:
            if not all(entry):
                return
            times = [half_queue.popleft() for half_queue in entry]
            if not any(entry):
                del self._pending_halves[key]
            skew = max(times) - min(times)
        if skew:
            self.gate_skew_events += 1
            self.max_gate_skew = max(self.max_gate_skew, skew)
            self.telf.log(now, "device", "skew", value=skew,
                          note="{} {}".format(action.name, action.qubits))
        self._apply_gate(action.name, action.qubits, action.params, now)

    def _apply_gate(self, name: str, qubits: Tuple[int, ...], params,
                    now: int) -> None:
        duration = self._gate_cycles_memo.get(len(qubits))
        if duration is None:
            duration = self.config.gate_cycles(len(qubits))
            self._gate_cycles_memo[len(qubits)] = duration
        activity = self.activity
        end = now + duration
        for q in qubits:
            act = activity[q]
            first = act.first_start
            if first is None or now < first:
                act.first_start = now
            if end > act.last_end:
                act.last_end = end
            act.gate_count += 1
        self.gates_applied += 1
        if self.record_gate_log:
            self.gate_log.append((now, name, qubits))
        if self.backend is not None:
            self.backend.apply_gate(name, qubits, tuple(params))
            if self.noise_model is not None:
                key = (name, qubits)
                channels = self._noise_channels.get(key)
                if channels is None:
                    channels = self.noise_model.gate_channels(
                        name, qubits, self.config.ns(duration))
                    self._noise_channels[key] = channels
                for noise_qubits, channel in channels:
                    if self.backend.apply_channel(
                            channel, noise_qubits,
                            rng=self.noise_rng) is not None:
                        self.noise_events += 1

    def _handle_measure(self, core, qubit: int, now: int) -> None:
        duration = self._measurement_cycles
        self.activity[qubit].note(now, duration)
        self.measurements += 1
        if self.record_gate_log:
            self.gate_log.append((now, "measure", (qubit,)))
        if self._forced[qubit]:
            outcome = self._forced[qubit].popleft()
            if self.backend is not None:
                outcome = self.backend.measure(qubit, forced=outcome)
        elif self.backend is not None:
            outcome = self.backend.measure(qubit)
        else:
            outcome = int(self.rng.integers(0, 2))
        if self.noise_model is not None and \
                self.noise_model.measure_flip > 0.0:
            # Readout error: the *reported* bit flips; the post-
            # measurement state is untouched.
            if self.noise_rng.random() < self.noise_model.measure_flip:
                outcome ^= 1
                self.noise_events += 1
        self.telf.log(now, "device", "meas", port=qubit, value=outcome)
        self.engine.after(duration,
                          lambda: core.deliver_message(ACQ_ADDRESS, outcome))

    # -- reporting -----------------------------------------------------------

    @property
    def pending_half_count(self) -> int:
        """Unmatched two-qubit gate halves (should be 0 after a run)."""
        return sum(1 for entry in self._pending_halves.values()
                   for queue in entry if queue)

    def lifetimes_ns(self) -> Dict[int, float]:
        """Per-qubit activity window in nanoseconds."""
        return {q: self.config.ns(a.lifetime)
                for q, a in self.activity.items()}
