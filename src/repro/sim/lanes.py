"""Lane-parallel multishot execution.

``run_circuit(shots=k)`` replays the same compiled system ``k`` times
with derived per-shot device seeds.  The device seed influences timing
through exactly one door: sampled measurement outcomes are *delivered*
to a core's message unit, and only a ``recv`` instruction ever reads
them.  A compiled program set with no ``recv`` therefore has
device-seed-independent timing — every timing-only lane is provably
identical — so instead of re-simulating per shot, the lane engine runs
the reference lane once and *fans the result out* across all lanes,
folding per-lane seeds back into the scalar per-shot stats format.

Dynamic programs (any ``recv`` present — feedback, teleportation
gadgets, lock-step broadcast waits) fall back to one full replay per
lane, sharing the compilation and decode work that
:func:`repro.compiler.driver.run_circuit` already paid once.

``REPRO_NO_LANES=1`` (strictly parsed, see :mod:`repro.fastpath`)
disables fast-forward entirely; the differential tests assert both modes
produce byte-identical per-shot stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..fastpath import lanes_enabled

#: Process-wide lane accounting: shots satisfied by static fast-forward
#: vs shots that ran a full per-lane replay.
_LANE_TOTALS: Dict[str, int] = {"fastforward": 0, "replayed": 0}


def lane_totals() -> Dict[str, int]:
    """Copy of the process-wide lane counters."""
    return dict(_LANE_TOTALS)


def reset_lane_totals() -> None:
    """Zero the lane counters (benchmarks, tests)."""
    for key in _LANE_TOTALS:
        _LANE_TOTALS[key] = 0


def static_timing(compilation) -> bool:
    """Whether ``compilation``'s timing is device-seed independent.

    True iff no compiled program contains a ``recv``: measurement
    outcomes (the only seed-dependent values) are then never read by any
    pipeline, so they cannot steer control flow or timing.  The scan
    result is memoized on the compilation object.
    """
    cached = getattr(compilation, "_lanes_static", None)
    if cached is not None:
        return cached
    static = not any(instr.mnemonic == "recv"
                     for program in compilation.programs.values()
                     for instr in program.instructions)
    compilation._lanes_static = static
    return static


def run_extra_shots(compilation, device_seed: int, shots: int,
                    until: Optional[int] = None,
                    first: Optional[Dict[str, int]] = None,
                    ) -> Tuple[List[Dict[str, int]], str]:
    """Stats for shots ``1 .. shots-1`` of a compiled circuit.

    Returns ``(shot_stats, mode)`` where ``mode`` is ``"fastforward"``
    (static program set, one reference lane fanned out) or ``"replay"``
    (one full simulation per lane).  ``first`` is shot 0's stats dict;
    when given and the program set is static, it doubles as the
    reference lane, so fast-forward costs zero additional simulations.
    Output is bit-identical between the two modes by construction, and
    the differential suite asserts it.
    """
    from ..compiler.driver import shot_device_seed, simulate_shot

    if shots <= 1:
        return [], "replay"
    if lanes_enabled() and static_timing(compilation):
        reference = first
        if reference is None:
            reference = simulate_shot(
                compilation, shot_device_seed(device_seed, 1), until)
        makespan = reference["makespan_cycles"]
        sync_stall = reference["sync_stall_cycles"]
        rest = [{"device_seed": shot_device_seed(device_seed, s),
                 "makespan_cycles": makespan,
                 "sync_stall_cycles": sync_stall}
                for s in range(1, shots)]
        _LANE_TOTALS["fastforward"] += shots - 1
        return rest, "fastforward"
    rest = [simulate_shot(compilation, shot_device_seed(device_seed, s),
                          until)
            for s in range(1, shots)]
    _LANE_TOTALS["replayed"] += shots - 1
    return rest, "replay"
