"""Exception hierarchy sanity."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("AssemblyError", "EncodingError", "ExecutionError",
                     "TimingViolation", "SynchronizationError",
                     "CompilationError", "TopologyError",
                     "QuantumStateError", "CalibrationError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_assembly_error_line_prefix(self):
        err = errors.AssemblyError("bad token", line=7)
        assert "line 7" in str(err)
        assert err.line == 7

    def test_assembly_error_without_line(self):
        err = errors.AssemblyError("oops")
        assert str(err) == "oops"
        assert err.line is None

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.TimingViolation("late")
