"""Stream IR utilities."""

from repro.compiler.streams import (Cond, Cw, SyncN, SyncR, Wait,
                                    append_wait, stream_wait_cycles)


class TestAppendWait:
    def test_appends_new(self):
        items = []
        append_wait(items, 5)
        assert len(items) == 1 and items[0].cycles == 5

    def test_merges_trailing(self):
        items = [Wait(5)]
        append_wait(items, 3)
        assert len(items) == 1 and items[0].cycles == 8

    def test_ignores_nonpositive(self):
        items = []
        append_wait(items, 0)
        append_wait(items, -2)
        assert items == []

    def test_no_merge_across_other_items(self):
        items = [Wait(5), Cw(0, 1)]
        append_wait(items, 3)
        assert len(items) == 3


class TestWaitAccounting:
    def test_counts_waits_and_gaps(self):
        items = [Wait(10), SyncN(peer=1, pair_key=(1,), gap=4), Cw(0, 1),
                 SyncR(group=9, delta=7, gap=2),
                 Cond(bit=0, value=1, body=[Wait(99)], reserve=5)]
        # Conditional body waits are not unconditional.
        assert stream_wait_cycles(items) == 10 + 4 + 2 + 5
