"""Scheme registry: validation, dispatch, pipeline stats, new schemes."""

import pytest

from repro.compiler import compile_circuit, run_circuit
from repro.compiler.codegen import lower_circuit
from repro.compiler.schemes import (SCHEMES, LoweringPass, Scheme,
                                    SchemeRegistryError, all_schemes,
                                    get_scheme, origin_module, register,
                                    scheme_names, unregister)
from repro.circuits import build_ghz
from repro.errors import CompilationError
from repro.quantum import QuantumCircuit, build_long_range_cnot_circuit


def toy_scheme(name, **overrides):
    kwargs = dict(name=name, description="toy scheme for tests",
                  lower=lower_circuit, tags=("test",))
    kwargs.update(overrides)
    return Scheme(**kwargs)


def feedback_rich_circuit():
    """Two independent feedback blocks on disjoint controllers — the
    circuit shape where lockstep_window diverges from lockstep."""
    circuit = QuantumCircuit(6, 2)
    circuit.h(0).h(3)
    circuit.measure(0, 0)
    circuit.measure(3, 1)
    circuit.x(1, condition=(0, 1))
    circuit.x(4, condition=(1, 1))
    circuit.cx(1, 2)
    circuit.cx(4, 5)
    circuit.measure(2, 0)
    circuit.measure(5, 1)
    return circuit


class TestRegistry:
    def test_canonical_order_and_view(self):
        names = scheme_names()
        assert names[:3] == ["bisp", "demand", "lockstep"]
        assert {"oracle", "lockstep_window"} <= set(names)
        assert tuple(SCHEMES) == tuple(names)
        assert len(SCHEMES) == len(names)
        assert "bisp" in SCHEMES and "warp" not in SCHEMES
        assert SCHEMES == tuple(names)
        assert SCHEMES[0] == "bisp"

    def test_descriptions_and_tags_exposed(self):
        for scheme in all_schemes():
            assert scheme.description.strip()
        assert "paper" in get_scheme("bisp").tags
        assert "anchor" in get_scheme("oracle").tags

    def test_duplicate_registration_rejected(self):
        register(toy_scheme("toy_dup"))
        try:
            with pytest.raises(SchemeRegistryError, match="already"):
                register(toy_scheme("toy_dup"))
        finally:
            unregister("toy_dup")

    @pytest.mark.parametrize("overrides,match", [
        ({}, "must match"),  # toy_invalid- default below is invalid
        ({"description": "  "}, "description"),
        ({"lower": 42}, "callable"),
        ({"passes": ("not-a-pass",)}, "LoweringPass"),
        ({"adapt_config": 3}, "adapt_config"),
        ({"tags": ("",)}, "tags"),
    ])
    def test_invalid_schemes_rejected(self, overrides, match):
        name = "toy_invalid" if overrides else "Toy-Invalid"
        with pytest.raises(SchemeRegistryError, match=match):
            register(toy_scheme(name, **overrides))

    def test_unknown_scheme_error_names_it_and_lists_registered(self):
        with pytest.raises(SchemeRegistryError) as excinfo:
            get_scheme("warp")
        message = str(excinfo.value)
        assert "warp" in message
        for name in ("bisp", "oracle", "lockstep_window"):
            assert name in message

    def test_origin_module_recorded(self):
        assert origin_module("bisp") == "repro.compiler.schemes"
        assert origin_module("oracle") == "repro.schemes.oracle"

    def test_registration_flows_into_live_view(self):
        register(toy_scheme("toy_view"))
        try:
            assert "toy_view" in SCHEMES
            assert "toy_view" in scheme_names()
        finally:
            unregister("toy_view")
        assert "toy_view" not in SCHEMES


class TestDispatch:
    def test_unknown_scheme_is_a_compilation_error(self):
        with pytest.raises(CompilationError) as excinfo:
            compile_circuit(build_ghz(3), scheme="warp")
        assert "warp" in str(excinfo.value)
        assert "bisp" in str(excinfo.value)

    def test_scheme_instance_accepted_directly(self):
        compilation = compile_circuit(build_ghz(3),
                                      scheme=toy_scheme("toy_inline"))
        assert compilation.scheme == "toy_inline"
        assert compilation.total_instructions > 0

    def test_pass_pipeline_stats_merged(self):
        circuit = build_long_range_cnot_circuit(5)
        bisp = compile_circuit(circuit, scheme="bisp")
        assert "hoisted_cycles" in bisp.stats
        demand = compile_circuit(circuit, scheme="demand")
        # Satellite: demand_gaps statistics are no longer discarded.
        assert demand.stats["hoisted_cycles"] == 0
        assert demand.stats["residual_gap_cycles"] > 0
        assert demand.stats["syncs"] > 0

    def test_custom_pass_stats_reach_compilation_result(self):
        seen = []

        def spy(lowered, config):
            seen.append(config.neighbor_link_cycles)
            return {"spy_pass_ran": 1}

        scheme = toy_scheme("toy_spy",
                            passes=(LoweringPass("spy", spy),))
        compilation = compile_circuit(build_ghz(3), scheme=scheme)
        assert seen == [compilation.config.neighbor_link_cycles]
        assert compilation.stats["spy_pass_ran"] == 1


class TestMeshThreading:
    def test_interaction_mesh_threaded_through_result(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        compilation = compile_circuit(circuit, mesh_kind="interaction")
        assert compilation.mesh_kind == "custom"
        assert compilation.mesh_edges == ((0, 5),)
        system = compilation.build_system()
        assert system.topology is compilation.topology
        assert system.topology.are_neighbors(0, 5)

    def test_line_mesh_recorded(self):
        compilation = compile_circuit(build_ghz(3))
        assert compilation.mesh_kind == "line"
        assert compilation.mesh_edges is None


class TestOracle:
    def test_zero_latency_config(self):
        compilation = compile_circuit(build_ghz(4), scheme="oracle")
        assert compilation.config.neighbor_link_cycles == 0
        assert compilation.config.router_hop_cycles == 0
        # The caller's config object is not mutated.
        from repro.sim.config import SimulationConfig
        config = SimulationConfig()
        compile_circuit(build_ghz(4), scheme="oracle", config=config)
        assert config.neighbor_link_cycles == 4

    def test_oracle_lower_bounds_every_real_scheme(self):
        circuit = build_long_range_cnot_circuit(7)
        times = {
            scheme: run_circuit(circuit, scheme=scheme, device_seed=3,
                                record_gate_log=False).makespan_cycles
            for scheme in ("oracle", "bisp", "demand", "lockstep")}
        assert times["oracle"] <= times["bisp"] <= times["demand"] \
            <= times["lockstep"]


class TestLockstepWindow:
    def test_diverges_from_lockstep_on_independent_feedback(self):
        circuit = feedback_rich_circuit()
        lockstep = run_circuit(circuit, scheme="lockstep", device_seed=7,
                               record_gate_log=False)
        windowed = run_circuit(circuit, scheme="lockstep_window",
                               device_seed=7, record_gate_log=False)
        # Independent feedback blocks overlap instead of stacking.
        assert windowed.makespan_cycles < lockstep.makespan_cycles
        assert windowed.system.device.gate_skew_events == 0

    def test_still_pays_central_broadcast(self):
        circuit = feedback_rich_circuit()
        windowed = compile_circuit(circuit, scheme="lockstep_window")
        bisp = compile_circuit(circuit, scheme="bisp")
        # Broadcast fan-out: more messages than BISP's point-to-point.
        assert windowed.stats["messages"] >= bisp.stats["messages"]


class TestThirdPartyEndToEnd:
    def test_registered_scheme_flows_through_sweep(self):
        """A scheme registered at import time reaches BENCH rows with
        zero harness edits — the registry's core promise."""
        from repro.harness.spec import SweepSpec
        from repro.harness.sweep import run_sweep

        register(toy_scheme("toy_sweep"))
        try:
            spec = SweepSpec(workloads=("bv_n400",),
                             schemes=("bisp", "toy_sweep"), scales=(0.02,))
            rows, _ = run_sweep(spec, processes=1)
            assert [row["scheme"] for row in rows] == ["bisp", "toy_sweep"]
            assert all(row["makespan_cycles"] > 0 for row in rows)
        finally:
            unregister("toy_sweep")

    def test_default_spec_resolution_sees_new_scheme(self):
        from repro.harness.spec import SweepSpec

        spec = SweepSpec(workloads=("bv_n400",), scales=(0.02,))
        before = spec.resolved_schemes()
        register(toy_scheme("toy_late"))
        try:
            assert spec.resolved_schemes() == before + ["toy_late"]
        finally:
            unregister("toy_late")
