"""Circuit lowering to per-controller streams (BISP/demand shape)."""

import pytest

from repro.compiler.streams import (Cond, Cw, Measure, RecvBit, SendBit,
                                    SyncN, SyncR, Wait)
from repro.errors import CompilationError
from repro.quantum.circuit import QuantumCircuit
from repro.sim.config import SimulationConfig
from repro.testing import lower_to_streams


def lower(circuit, n=None, mesh="line"):
    return lower_to_streams(circuit, mesh=mesh)


class TestSingleQubitOps:
    def test_gate_goes_to_owner(self):
        circuit = QuantumCircuit(3)
        circuit.h(1)
        lowered = lower(circuit)
        assert any(isinstance(i, Cw) for i in lowered.streams[1])
        assert not lowered.streams[0]
        assert not lowered.streams[2]

    def test_gate_followed_by_duration_wait(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        lowered = lower(circuit)
        items = lowered.streams[0]
        assert isinstance(items[0], Cw)
        assert isinstance(items[1], Wait)
        assert items[1].cycles == SimulationConfig().single_qubit_gate_cycles

    def test_distinct_gates_distinct_codewords(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).h(0)
        lowered = lower(circuit)
        cws = [i.codeword for i in lowered.streams[0]
               if isinstance(i, Cw)]
        assert cws[0] == cws[2] != cws[1]

    def test_delay_becomes_wait(self):
        circuit = QuantumCircuit(1)
        circuit.gate("delay", 0, params=(400.0,))
        lowered = lower(circuit)
        assert isinstance(lowered.streams[0][0], Wait)
        assert lowered.streams[0][0].cycles == 100  # 400 ns at 4 ns


class TestTwoQubitOps:
    def test_neighbors_use_nearby_sync(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        lowered = lower(circuit)
        assert any(isinstance(i, SyncN) for i in lowered.streams[0])
        assert any(isinstance(i, SyncN) for i in lowered.streams[1])
        assert not lowered.sync_groups

    def test_distant_pair_uses_region_sync(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        lowered = lower(circuit)
        assert any(isinstance(i, SyncR) for i in lowered.streams[0])
        assert len(lowered.sync_groups) == 1
        (members,) = lowered.sync_groups.values()
        assert members == [0, 4]

    def test_pair_group_reused(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4).cx(0, 4)
        lowered = lower(circuit)
        assert len(lowered.sync_groups) == 1

    def test_gate_halves_assigned(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        lowered = lower(circuit)
        actions = [a for table in
                   (lowered.allocators[0].table, lowered.allocators[1].table)
                   for a in table.values()]
        halves = sorted(a.half for a in actions)
        assert halves == [0, 1]
        assert all(a.total_halves == 2 for a in actions)

    def test_same_controller_two_qubit_gate_single_action(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        # both qubits land on controller 0
        lowered = lower_to_streams(circuit, qubits_per_controller=2)
        assert not any(isinstance(i, (SyncN, SyncR))
                       for i in lowered.streams[0])


class TestFeedback:
    def test_measure_produces_measure_item(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        lowered = lower(circuit)
        assert isinstance(lowered.streams[0][0], Measure)

    def test_measure_without_cbit_rejected(self):
        from repro.quantum.circuit import Operation
        circuit = QuantumCircuit(1, 0)
        circuit.operations.append(Operation("measure", (0,)))
        with pytest.raises(CompilationError):
            lower(circuit)

    def test_local_condition_no_messages(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0).x(0, condition=(0, 1))
        lowered = lower(circuit)
        assert lowered.num_messages == 0
        assert any(isinstance(i, Cond) for i in lowered.streams[0])

    def test_remote_condition_sends_bit(self):
        circuit = QuantumCircuit(3, 1)
        circuit.measure(0, 0).x(2, condition=(0, 1))
        lowered = lower(circuit)
        assert any(isinstance(i, SendBit) and i.dst == 2
                   for i in lowered.streams[0])
        assert any(isinstance(i, RecvBit) and i.src == 0
                   for i in lowered.streams[2])
        assert lowered.num_messages == 1

    def test_bit_sent_once_per_consumer(self):
        circuit = QuantumCircuit(3, 1)
        circuit.measure(0, 0)
        circuit.x(2, condition=(0, 1))
        circuit.z(2, condition=(0, 1))
        lowered = lower(circuit)
        sends = [i for i in lowered.streams[0] if isinstance(i, SendBit)]
        assert len(sends) == 1  # second use reads local memory

    def test_remeasure_invalidates_cached_copies(self):
        circuit = QuantumCircuit(3, 1)
        circuit.measure(0, 0)
        circuit.x(2, condition=(0, 1))
        circuit.measure(0, 0)
        circuit.z(2, condition=(0, 1))
        lowered = lower(circuit)
        sends = [i for i in lowered.streams[0] if isinstance(i, SendBit)]
        assert len(sends) == 2

    def test_use_before_measure_rejected(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(1, condition=(0, 1))
        with pytest.raises(CompilationError):
            lower(circuit)

    def test_conditional_two_qubit_syncs_inside_branch(self):
        circuit = QuantumCircuit(3, 1)
        circuit.measure(0, 0).cz(1, 2, condition=(0, 1))
        lowered = lower(circuit)
        for controller in (1, 2):
            conds = [i for i in lowered.streams[controller]
                     if isinstance(i, Cond)]
            assert len(conds) == 1
            assert any(isinstance(i, SyncN) for i in conds[0].body)

    def test_reset_is_measure_plus_local_feedback(self):
        circuit = QuantumCircuit(1)
        circuit.reset_qubit(0)
        lowered = lower(circuit)
        kinds = [type(i).__name__ for i in lowered.streams[0]]
        assert kinds[0] == "Measure"
        assert "Cond" in kinds
        assert lowered.num_feedback_ops == 1
