"""Compiled distributed execution == direct simulation (the gold test).

Random dynamic circuits are compiled to HISQ for all three schemes, run on
the event-driven control system against a statevector backend, and the
final quantum state must match a direct (reference) execution driven to
the same measurement outcomes.  Gate-half skew must be zero.
"""

import numpy as np
import pytest

from repro.circuits import build_ghz, build_w_state
from repro.compiler import run_circuit
from repro.quantum import build_long_range_cnot_circuit
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.stabilizer import StabilizerBackend
from repro.quantum.statevector import StatevectorBackend

from repro.compiler.schemes import scheme_names

#: Every registered scheme — the equivalence tests are the contract a
#: new scheme must pass to join the registry.
SCHEMES = tuple(scheme_names())


def random_dynamic_circuit(num_qubits, rng, ops=20):
    circuit = QuantumCircuit(num_qubits, num_qubits)
    measured = []
    for _ in range(ops):
        kind = rng.random()
        if kind < 0.45:
            gate = ["h", "x", "s", "sdg", "sx", "z"][rng.integers(6)]
            circuit.gate(gate, int(rng.integers(num_qubits)))
        elif kind < 0.75:
            a, b = map(int, rng.choice(num_qubits, 2, replace=False))
            circuit.gate(["cx", "cz"][rng.integers(2)], a, b)
        elif kind < 0.9 or not measured:
            q = int(rng.integers(num_qubits))
            circuit.measure(q, q)
            measured.append(q)
        else:
            q = int(rng.integers(num_qubits))
            bit = measured[rng.integers(len(measured))]
            circuit.gate(["x", "z"][rng.integers(2)], q,
                         condition=(bit, 1))
    return circuit


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_dynamic_circuits_match_reference(self, scheme, seed):
        rng = np.random.default_rng(seed)
        circuit = random_dynamic_circuit(4, rng)
        backend = StatevectorBackend(4, seed=seed)
        result = run_circuit(circuit, scheme=scheme, backend=backend,
                             device_seed=seed)
        device = result.system.device
        assert device.gate_skew_events == 0, scheme
        assert device.pending_half_count == 0
        # Reference: re-run directly, forcing the same outcomes the
        # distributed execution produced (in per-qubit order).
        outcomes = {}
        for time, name, qubits in device.gate_log:
            if name == "measure":
                outcomes.setdefault(qubits[0], []).append(None)
        forced = {}
        meas_records = [r for r in result.system.telf.filter(kind="meas")]
        for record in meas_records:
            forced.setdefault(record.port, []).append(record.value)
        reference = StatevectorBackend(4, seed=999)
        reference.run_circuit(circuit, forced_outcomes=forced)
        assert backend.fidelity(reference) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_ghz_all_schemes(self, scheme):
        backend = StabilizerBackend(6, seed=5)
        result = run_circuit(build_ghz(6), scheme=scheme, backend=backend)
        assert result.system.device.gate_skew_events == 0
        bits = backend.measure_all()
        assert len(set(bits)) == 1

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_w_state_single_excitation(self, scheme):
        backend = StatevectorBackend(5, seed=8)
        run_circuit(build_w_state(5), scheme=scheme, backend=backend)
        total = sum(backend.probability_one(q) for q in range(5))
        assert total == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_teleported_cnot_bell_pair(self, scheme):
        circuit = build_long_range_cnot_circuit(5)
        for seed in range(3):
            backend = StatevectorBackend(6, seed=seed)
            result = run_circuit(circuit, scheme=scheme, backend=backend,
                                 device_seed=seed)
            assert result.system.device.gate_skew_events == 0
            assert backend.probability_one(0) == pytest.approx(0.5)
            assert backend.measure(0) == backend.measure(5)


class TestRuntimeOrdering:
    def test_bisp_at_least_as_fast_as_demand(self):
        """Booking can only help: BISP <= demand on every circuit."""
        rng = np.random.default_rng(11)
        for seed in range(3):
            circuit = random_dynamic_circuit(4, np.random.default_rng(seed),
                                             ops=25)
            times = {}
            for scheme in ("bisp", "demand"):
                result = run_circuit(circuit, scheme=scheme,
                                     device_seed=3)
                times[scheme] = result.makespan_cycles
            assert times["bisp"] <= times["demand"]

    def test_feedback_heavy_circuit_favors_bisp(self):
        circuit = build_long_range_cnot_circuit(7)
        times = {}
        for scheme in ("bisp", "lockstep"):
            result = run_circuit(circuit, scheme=scheme, device_seed=1)
            times[scheme] = result.makespan_cycles
        assert times["bisp"] < times["lockstep"]

    def test_determinism(self):
        circuit = build_long_range_cnot_circuit(4)
        first = run_circuit(circuit, scheme="bisp",
                            device_seed=5).makespan_cycles
        second = run_circuit(circuit, scheme="bisp",
                             device_seed=5).makespan_cycles
        assert first == second


class TestCompilationArtifacts:
    def test_programs_decode_and_encode(self):
        from repro.compiler import compile_circuit
        from repro.isa import encode_program, decode_program
        circuit = build_ghz(4)
        compilation = compile_circuit(circuit, scheme="bisp")
        for program in compilation.programs.values():
            blob = encode_program(program)
            assert decode_program(blob) == program.instructions

    def test_stats_populated(self):
        from repro.compiler import compile_circuit
        circuit = build_long_range_cnot_circuit(5)
        compilation = compile_circuit(circuit, scheme="bisp")
        assert compilation.stats["feedback_ops"] > 0
        assert compilation.stats["syncs"] > 0
        assert compilation.total_instructions > 0
