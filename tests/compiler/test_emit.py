"""Stream -> HISQ instruction expansion."""

import pytest

from repro.compiler.emit import (emit_program, emit_wait,
                                 expand_items, load_bit, store_bit)
from repro.compiler.streams import (Cond, Cw, Measure, RecvBit, SendBit,
                                    SyncN, SyncR, Wait)
from repro.core.config import ACQ_ADDRESS
from repro.errors import CompilationError


class TestBasics:
    def test_wait_expansion(self):
        out = []
        emit_wait(57, out)
        assert len(out) == 1 and out[0].imm == 57

    def test_long_wait_splits(self):
        out = []
        emit_wait((1 << 20) + 5, out)
        assert len(out) == 2
        assert sum(i.imm for i in out) == (1 << 20) + 5

    def test_negative_wait_rejected(self):
        with pytest.raises(CompilationError):
            emit_wait(-1, [])

    def test_cw(self):
        (instr,) = expand_items([Cw(3, 9)])
        assert instr.mnemonic == "cw.i.i"
        assert (instr.imm, instr.imm2) == (3, 9)

    def test_sync_nearby_with_gap(self):
        out = expand_items([SyncN(peer=1, pair_key=(0,), gap=4)])
        assert out[0].mnemonic == "sync" and out[0].imm2 == 0
        assert out[1].mnemonic == "waiti" and out[1].imm == 4

    def test_sync_region_delta(self):
        out = expand_items([SyncR(group=0x100, delta=20, gap=0)])
        assert out[0].imm == 0x100 and out[0].imm2 == 20

    def test_region_delta_zero_rejected(self):
        with pytest.raises(CompilationError):
            expand_items([SyncR(group=1, delta=0, gap=0)])

    def test_program_ends_with_halt(self):
        program = emit_program("c0", [Cw(0, 1)])
        assert program.instructions[-1].mnemonic == "halt"


class TestBitSpills:
    def test_small_address_direct(self):
        (instr,) = store_bit(5)
        assert instr.mnemonic == "sw" and instr.imm == 20

    def test_large_address_uses_lui(self):
        ops = store_bit(10_000)  # address 40000 > 2047
        assert ops[0].mnemonic == "lui"
        assert ops[-1].mnemonic == "sw"

    def test_load_store_symmetry(self):
        assert len(load_bit(3)) == len(store_bit(3)) == 1
        assert len(load_bit(10_000)) == len(store_bit(10_000))

    def test_measure_expansion(self):
        out = expand_items([Measure(port=1, codeword=2, bit=0)])
        assert [i.mnemonic for i in out] == ["cw.i.i", "recv", "sw"]
        assert out[1].imm == ACQ_ADDRESS

    def test_send_recv_bits(self):
        out = expand_items([SendBit(dst=3, bit=1), RecvBit(src=5, bit=2)])
        mnems = [i.mnemonic for i in out]
        assert mnems == ["lw", "send", "recv", "sw"]


class TestConditionals:
    def test_branch_skips_body(self):
        body = [Cw(0, 1), Wait(5)]
        out = expand_items([Cond(bit=0, value=1, body=body)])
        branch = next(i for i in out if i.mnemonic == "beq")
        assert branch.imm == 3  # cw + waiti + 1

    def test_value_zero_uses_bne(self):
        out = expand_items([Cond(bit=0, value=0, body=[Cw(0, 1)])])
        assert any(i.mnemonic == "bne" for i in out)

    def test_reserve_wait_unconditional(self):
        out = expand_items([Cond(bit=0, value=1, body=[Cw(0, 1)],
                                 reserve=9)])
        assert out[-1].mnemonic == "waiti" and out[-1].imm == 9
        branch = next(i for i in out if i.mnemonic == "beq")
        assert branch.imm == 2  # jumps over the cw only, not the reserve

    def test_bad_condition_value_rejected(self):
        with pytest.raises(CompilationError):
            expand_items([Cond(bit=0, value=2, body=[])])

    def test_nested_items_in_body(self):
        body = [SyncN(peer=1, pair_key=(1,), gap=4), Cw(0, 1), Wait(10)]
        out = expand_items([Cond(bit=2, value=1, body=body)])
        branch = next(i for i in out if i.mnemonic == "beq")
        assert branch.imm == 5  # sync + waiti + cw + waiti + 1
