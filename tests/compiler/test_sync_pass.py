"""BISP booking (hoisting) pass."""

from repro.compiler.streams import Measure, SyncN, SyncR, Wait
from repro.compiler.sync_pass import demand_gaps, hoist_bookings
from repro.quantum.circuit import QuantumCircuit
from repro.testing import lower_to_streams as lowered_for


def wait_before_sync(stream):
    total = 0
    for item in stream:
        if isinstance(item, (SyncN, SyncR)):
            return total
        if isinstance(item, Wait):
            total += item.cycles
    return None


class TestNearbyHoisting:
    def test_sync_moves_over_deterministic_work(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).h(1).h(1)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        stats = hoist_bookings(lowered, neighbor_countdown=4)
        assert stats["hoisted_cycles"] > 0
        # Both streams: sync before all deterministic waits
        for addr in (0, 1):
            assert wait_before_sync(lowered.streams[addr]) == 0

    def test_pairwise_min_governs_hoist(self):
        # C0 has 2 gates (10 cycles) headroom; C1 has none.
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        stats = hoist_bookings(lowered, neighbor_countdown=4)
        syncs0 = [i for i in lowered.streams[0] if isinstance(i, SyncN)]
        syncs1 = [i for i in lowered.streams[1] if isinstance(i, SyncN)]
        # C1 has zero headroom -> hoist 0 on both -> gap stays N.
        assert syncs0[0].gap == 4
        assert syncs1[0].gap == 4

    def test_full_hoist_eliminates_gap(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)  # 5 cycles headroom each > N=4
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        sync = next(i for i in lowered.streams[0] if isinstance(i, SyncN))
        assert sync.gap == 0

    def test_partial_hoist_residual_gap(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=9)  # headroom 5 < 9
        sync = next(i for i in lowered.streams[0] if isinstance(i, SyncN))
        assert sync.gap == 4  # 9 - 5

    def test_hoist_stops_at_measurement(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        # The sync on C0 must stay after the Measure item.
        stream = lowered.streams[0]
        measure_at = next(i for i, item in enumerate(stream)
                          if isinstance(item, Measure))
        sync_at = next(i for i, item in enumerate(stream)
                       if isinstance(item, SyncN))
        assert sync_at > measure_at

    def test_hoist_stops_at_previous_sync(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        syncs = [i for i, item in enumerate(lowered.streams[0])
                 if isinstance(item, SyncN)]
        assert len(syncs) == 2
        assert syncs[0] < syncs[1]


class TestRegionHoisting:
    def test_region_delta_grows_with_headroom(self):
        circuit = QuantumCircuit(5)
        for _ in range(10):
            circuit.h(0)
            circuit.h(4)
        circuit.cx(0, 4)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        sync = next(i for i in lowered.streams[0] if isinstance(i, SyncR))
        assert sync.delta == 50  # ten 1q gates of 5 cycles
        assert sync.gap == 0

    def test_region_sides_hoist_independently(self):
        circuit = QuantumCircuit(5)
        circuit.h(0)  # only one side has headroom
        circuit.cx(0, 4)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        sync0 = next(i for i in lowered.streams[0] if isinstance(i, SyncR))
        sync4 = next(i for i in lowered.streams[4] if isinstance(i, SyncR))
        assert sync0.delta == 5
        assert sync4.delta == 1  # ISA minimum

    def test_unhoisted_region_delta_is_one(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        lowered = lowered_for(circuit)
        hoist_bookings(lowered, neighbor_countdown=4)
        sync = next(i for i in lowered.streams[0] if isinstance(i, SyncR))
        assert sync.delta == 1 and sync.gap == 1


class TestDemandScheme:
    def test_demand_keeps_full_gaps(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        circuit.cx(0, 1)
        lowered = lowered_for(circuit)
        demand_gaps(lowered, neighbor_countdown=4)
        sync = next(i for i in lowered.streams[0] if isinstance(i, SyncN))
        assert sync.gap == 4
