"""Golden-file regression tests for HISQ codegen.

A small fixed dynamic circuit is compiled under all three synchronization
schemes; the emitted per-controller HISQ listings must match the
checked-in snapshots under ``tests/compiler/golden/``.  To regenerate
after an intentional codegen change::

    python -m pytest tests/compiler/test_golden_codegen.py --update-golden

and review the snapshot diff like any other code change.
"""

import os

import pytest

from repro.compiler.driver import SCHEMES, compile_circuit
from repro.quantum.circuit import QuantumCircuit

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden_circuit() -> QuantumCircuit:
    """Fixed 3-qubit dynamic circuit covering every stream kind.

    One of each: 1q gate, same/cross-controller 2q gates, measurement,
    feedback (conditional X on a remote controller) — enough to pin the
    sync placement, codeword allocation and spill code of each scheme.
    """
    circuit = QuantumCircuit(3, 2, name="golden")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(1, 0)
    circuit.x(2, condition=(0, 1))
    circuit.cz(1, 2)
    circuit.measure(2, 1)
    return circuit


def render_compilation(scheme: str) -> str:
    """Canonical text form of the compiled programs for one scheme."""
    result = compile_circuit(golden_circuit(), scheme=scheme)
    sections = ["# scheme: {}".format(scheme),
                "# stats: {}".format(
                    {k: result.stats[k] for k in sorted(result.stats)})]
    for address in sorted(result.programs):
        sections.append(result.programs[address].listing())
    return "\n\n".join(sections) + "\n"


@pytest.mark.parametrize("scheme", SCHEMES)
def test_codegen_matches_golden(scheme, update_golden):
    path = os.path.join(GOLDEN_DIR, "{}.txt".format(scheme))
    rendered = render_compilation(scheme)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(rendered)
        pytest.skip("golden snapshot updated")
    assert os.path.exists(path), (
        "missing golden snapshot {}; run with --update-golden".format(path))
    with open(path) as handle:
        expected = handle.read()
    assert rendered == expected, (
        "HISQ codegen for scheme {!r} changed; if intentional, rerun with "
        "--update-golden and review the snapshot diff".format(scheme))


def test_schemes_differ_from_each_other():
    """Sanity: the paper's three schemes must not collapse to identical
    programs.  (The registry's extra schemes are allowed to coincide with
    a core scheme on this tiny circuit — lockstep_window only diverges
    from lockstep once a circuit has several feedback blocks, pinned in
    tests/compiler/test_schemes.py.)"""
    texts = {scheme: render_compilation(scheme)
             for scheme in ("bisp", "demand", "lockstep")}
    assert len(set(texts.values())) == 3
