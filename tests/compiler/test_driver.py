"""Driver-level options: meshes, multi-qubit controllers, strictness."""

import pytest

from repro.circuits import build_ghz
from repro.compiler import compile_circuit, run_circuit
from repro.errors import CompilationError
from repro.quantum import QuantumCircuit, build_long_range_cnot_circuit
from repro.quantum.statevector import StatevectorBackend


class TestSchemeSelection:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(CompilationError):
            compile_circuit(build_ghz(3), scheme="magic")

    def test_all_schemes_compile(self):
        for scheme in ("bisp", "demand", "lockstep"):
            compilation = compile_circuit(build_ghz(3), scheme=scheme)
            assert compilation.scheme == scheme
            assert len(compilation.programs) == 3


class TestMeshKinds:
    def test_interaction_mesh_makes_pairs_neighbors(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        compilation = compile_circuit(circuit, mesh_kind="interaction")
        assert compilation.topology.are_neighbors(0, 5)
        # Interaction mesh -> nearby sync, no region groups.
        assert not compilation.sync_groups

    def test_line_mesh_distant_pair_gets_region_group(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        compilation = compile_circuit(circuit, mesh_kind="line")
        assert len(compilation.sync_groups) == 1

    def test_interaction_mesh_correctness(self):
        circuit = build_long_range_cnot_circuit(4)
        backend = StatevectorBackend(5, seed=2)
        result = run_circuit(circuit, scheme="bisp",
                             mesh_kind="interaction", backend=backend)
        assert result.system.device.gate_skew_events == 0
        assert backend.measure(0) == backend.measure(4)


class TestMultiQubitControllers:
    def test_fewer_controllers(self):
        compilation = compile_circuit(build_ghz(6),
                                      qubits_per_controller=2)
        assert compilation.qmap.num_controllers == 3
        assert len(compilation.programs) == 3

    def test_correctness_with_grouped_qubits(self):
        from repro.quantum.stabilizer import StabilizerBackend
        backend = StabilizerBackend(6, seed=4)
        result = run_circuit(build_ghz(6), scheme="bisp",
                             qubits_per_controller=2, backend=backend)
        assert result.system.device.gate_skew_events == 0
        assert len(set(backend.measure_all())) == 1

    def test_intra_controller_gates_need_no_sync(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)  # both pairs co-located at qpc=2
        compilation = compile_circuit(circuit, qubits_per_controller=2)
        assert compilation.stats["syncs"] == 0

    def test_feedback_with_grouped_qubits(self):
        circuit = QuantumCircuit(4, 1)
        circuit.h(0).measure(0, 0).x(3, condition=(0, 1))
        backend = StatevectorBackend(4, seed=1)
        result = run_circuit(circuit, scheme="bisp",
                             qubits_per_controller=2, backend=backend)
        p3 = backend.probability_one(3)
        p0 = backend.probability_one(0)
        assert p3 == pytest.approx(p0)


class TestRunResult:
    def test_makespan_units(self):
        result = run_circuit(build_ghz(3), scheme="bisp")
        assert result.makespan_ns == pytest.approx(
            result.makespan_cycles * 4.0)

    def test_strict_timing_clean_run(self):
        compilation = compile_circuit(build_ghz(4), scheme="bisp")
        system = compilation.build_system(strict_timing=True)
        stats = system.run()
        assert stats.timing_violations == 0

    def test_stall_statistics_collected(self):
        circuit = build_long_range_cnot_circuit(5)
        result = run_circuit(circuit, scheme="demand")
        assert result.stats.sync_stall_cycles > 0

    def test_empty_controllers_excluded(self):
        circuit = QuantumCircuit(5)
        circuit.h(0)
        compilation = compile_circuit(circuit)
        assert list(compilation.programs) == [0]
