"""Persistent compile cache: identity, integrity, cross-process sharing."""

import pickle
import subprocess
import sys

from repro.circuits import build_ghz
from repro.compiler import cache as compile_cache
from repro.compiler import compile_circuit, run_circuit
from repro.compiler.cache import (COMPILE_CACHE_VERSION, CompileCache,
                                  cached_compile, compile_cache_totals,
                                  compile_key)
from repro.diskcache import PickleDirStore
from repro.isa import decoded
from repro.sim.config import SimulationConfig


def _delta(before):
    after = compile_cache_totals()
    return {k: after[k] - before[k] for k in after}


class TestCompileKey:
    def test_key_is_stable(self):
        circuit = build_ghz(4)
        assert compile_key(circuit) == compile_key(build_ghz(4))

    def test_key_varies_with_inputs(self):
        circuit = build_ghz(4)
        base = compile_key(circuit)
        assert compile_key(build_ghz(5)) != base
        assert compile_key(circuit, scheme="lockstep") != base
        assert compile_key(circuit, mesh_kind="interaction") != base
        assert compile_key(circuit, qubits_per_controller=2) != base
        assert compile_key(
            circuit, config=SimulationConfig(neighbor_link_cycles=9)) != base

    def test_salt_bump_changes_key(self, monkeypatch):
        circuit = build_ghz(4)
        base = compile_key(circuit)
        monkeypatch.setattr(compile_cache, "COMPILE_CACHE_VERSION",
                            COMPILE_CACHE_VERSION + 1)
        assert compile_key(circuit) != base


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        circuit = build_ghz(5)
        before = compile_cache_totals()
        first = cached_compile(circuit, cache=cache)
        assert _delta(before) == {"hits": 0, "misses": 1}
        assert len(cache) == 1
        second = cached_compile(circuit, cache=cache)
        assert _delta(before) == {"hits": 1, "misses": 1}
        assert second is not first  # a fresh deserialized object
        assert second.scheme == first.scheme
        assert sorted(second.programs) == sorted(first.programs)

    def test_no_cache_is_plain_compile(self):
        before = compile_cache_totals()
        result = cached_compile(build_ghz(3), cache=None)
        assert _delta(before) == {"hits": 0, "misses": 0}
        assert len(result.programs) == 3

    def test_cached_run_bit_identical(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        circuit = build_ghz(6)
        fresh = run_circuit(circuit, scheme="bisp", device_seed=7,
                            compilation=compile_circuit(circuit))
        cached_compile(circuit, cache=cache)  # publish
        warm = run_circuit(circuit, scheme="bisp", device_seed=7,
                           compilation=cached_compile(circuit, cache=cache))
        assert warm.makespan_cycles == fresh.makespan_cycles
        assert warm.stats.sync_stall_cycles == fresh.stats.sync_stall_cycles
        assert warm.system.device.lifetimes_ns() == \
            fresh.system.device.lifetimes_ns()

    def test_loaded_decode_is_adopted(self, tmp_path):
        """A warm load must re-pin the decoded artifact: the simulator's
        decode_program call then costs a pin check, not a decode."""
        cache = CompileCache(str(tmp_path))
        circuit = build_ghz(4)
        cached_compile(circuit, cache=cache)
        decoded.clear_decode_caches()
        result = cached_compile(circuit, cache=cache)
        misses_after_load = decoded.decode_cache_stats()["misses"]
        for program in result.programs.values():
            dec = decoded.decode_program(program)
            assert dec.instructions[0] is program.instructions[0]
            # Adopted counters start at zero in this process.
            assert dec.vector_replays == 0
        assert decoded.decode_cache_stats()["misses"] == \
            misses_after_load  # pins served every lookup


class TestIntegrity:
    def _warm(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        circuit = build_ghz(4)
        cached_compile(circuit, cache=cache)
        return cache, circuit

    def test_corrupt_entry_recompiles(self, tmp_path):
        cache, circuit = self._warm(tmp_path)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        before = compile_cache_totals()
        result = cached_compile(circuit, cache=cache)
        assert _delta(before) == {"hits": 0, "misses": 1}
        assert len(result.programs) == 4

    def test_truncated_entry_recompiles(self, tmp_path):
        cache, circuit = self._warm(tmp_path)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(path.read_bytes()[:40])
        before = compile_cache_totals()
        result = cached_compile(circuit, cache=cache)
        assert _delta(before) == {"hits": 0, "misses": 1}
        assert len(result.programs) == 4

    def test_wrong_payload_shape_is_miss(self, tmp_path):
        cache, circuit = self._warm(tmp_path)
        key = compile_key(circuit)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(pickle.dumps(["unexpected", "shape"]))
        assert cache.get(key) is None

    def test_stale_version_is_miss(self, tmp_path):
        """An entry written under another format version never
        deserializes into a live compilation."""
        cache, circuit = self._warm(tmp_path)
        key = compile_key(circuit)
        # Round-trip through the plain base store so the rewritten entry
        # carries a *valid* checksum envelope — this must be a version
        # miss, not an integrity quarantine.
        raw_store = PickleDirStore(str(tmp_path))
        payload = raw_store.get(key)
        payload["version"] = COMPILE_CACHE_VERSION + 1
        raw_store.put(key, payload)
        assert cache.get(key) is None
        before = compile_cache_totals()
        cached_compile(circuit, cache=cache)
        assert _delta(before)["misses"] == 1

    def test_recompile_republishes(self, tmp_path):
        cache, circuit = self._warm(tmp_path)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"junk")
        cached_compile(circuit, cache=cache)
        before = compile_cache_totals()
        cached_compile(circuit, cache=cache)
        assert _delta(before) == {"hits": 1, "misses": 0}


_SUBPROCESS_SCRIPT = """
import sys
from repro.circuits import build_ghz
from repro.compiler import run_circuit
from repro.compiler.cache import (CompileCache, cached_compile,
                                  compile_cache_totals)

cache = CompileCache(sys.argv[1])
compilation = cached_compile(build_ghz(5), cache=cache)
result = run_circuit(build_ghz(5), scheme="bisp", device_seed=11,
                     compilation=compilation)
totals = compile_cache_totals()
print("{hits} {misses}".format(**totals), result.makespan_cycles)
"""


class TestSharedStore:
    def test_two_processes_share_one_store(self, tmp_path):
        """A store warmed by one fresh interpreter serves another: the
        second process compiles nothing and reproduces the same
        makespan (the cross-worker contract sweep and service workers
        rely on)."""
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT, str(tmp_path)],
                capture_output=True, text=True, timeout=120)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.split())
        (h1, m1, span1), (h2, m2, span2) = outputs
        assert (h1, m1) == ("0", "1")  # cold writer
        assert (h2, m2) == ("1", "0")  # warm reader, zero compiles
        assert span1 == span2
