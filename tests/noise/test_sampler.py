"""Sampler correctness: differential vs noiseless backends, frame-vs-
stabilizer validation, proxy convergence, method selection, estimator."""

import numpy as np
import pytest

from repro.fidelity import (FidelityEstimate, circuit_fidelity,
                            estimate_fidelity, wilson_interval)
from repro.noise import (NoiseModel, NoiseSamplingError, choose_method,
                         idle_channels_from_lifetimes, record_fidelity,
                         run_noisy_stabilizer, sample_noisy,
                         survival_fidelity)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import run_multishot

DEPOLARIZING = NoiseModel(gate_1q=0.05, gate_2q=0.1, measure_flip=0.02)


def ghz_circuit(n=3):
    circuit = QuantumCircuit(n, n)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


def deterministic_feedback_circuit():
    """All measurement outcomes deterministic in every error branch:
    |1> prep, CX fan-out, a conditional-X correction, final readout."""
    circuit = QuantumCircuit(3, 3)
    circuit.x(0)
    circuit.cx(0, 1)
    circuit.measure(1, 0)
    circuit.x(2, condition=(0, 1))   # Pauli feedback
    circuit.cx(1, 2)
    circuit.measure(0, 1)
    circuit.measure(2, 2)
    return circuit


class TestZeroRateDifferential:
    """A zero-rate NoiseModel reproduces the noiseless backends exactly."""

    def test_statevector_path_bit_identical(self, rng_seed):
        circuit = ghz_circuit()
        sample = sample_noisy(circuit, NoiseModel(), 40, seed=rng_seed,
                              method="statevector")
        reference = run_multishot(circuit, 40, seed=rng_seed)
        assert np.array_equal(sample.noisy_bits, reference)
        assert np.array_equal(sample.reference_bits, reference)
        assert sample.record_error_count == 0
        assert bool(sample.survival.all())

    def test_frame_path_no_flips(self, rng_seed):
        sample = sample_noisy(ghz_circuit(), NoiseModel(), 40,
                              seed=rng_seed, method="frame")
        assert int(np.count_nonzero(sample.flips)) == 0
        assert bool(sample.survival.all())

    def test_conditional_reset_respects_condition(self, rng_seed):
        # Regression: the compiled program used to drop op.condition on
        # resets, so the statevector path reset unconditionally.
        from repro.quantum.circuit import Operation
        circuit = QuantumCircuit(1, 2)
        circuit.x(0)
        circuit.measure(0, 0)                       # c0 = 1
        circuit.add(Operation("reset", (0,), condition=(0, 0)))  # skipped
        circuit.measure(0, 1)                       # c1 must stay 1
        sample = sample_noisy(circuit, NoiseModel(), 10, seed=rng_seed,
                              method="statevector")
        assert np.array_equal(sample.noisy_bits,
                              np.ones((10, 2), dtype=np.int8))
        taken = QuantumCircuit(1, 2)
        taken.x(0)
        taken.measure(0, 0)
        taken.add(Operation("reset", (0,), condition=(0, 1)))   # taken
        taken.measure(0, 1)
        sample = sample_noisy(taken, NoiseModel(), 10, seed=rng_seed,
                              method="statevector")
        assert np.array_equal(sample.noisy_bits[:, 1],
                              np.zeros(10, dtype=np.int8))
        stabilizer = run_noisy_stabilizer(taken, NoiseModel(), 10,
                                          seed=rng_seed)
        assert np.array_equal(stabilizer[:, 1], np.zeros(10, dtype=np.int8))


class TestFrameVsStabilizer:
    def test_bit_identical_on_deterministic_circuit(self, rng_seed):
        circuit = deterministic_feedback_circuit()
        frame = sample_noisy(circuit, DEPOLARIZING, 400, seed=rng_seed,
                             method="frame")
        stabilizer = run_noisy_stabilizer(circuit, DEPOLARIZING, 400,
                                          seed=rng_seed)
        assert np.array_equal(frame.noisy_bits, stabilizer)

    def test_distribution_agrees_on_random_circuit(self, rng_seed):
        # GHZ records are random; compare noisy-bit parity statistics.
        circuit = ghz_circuit()
        shots = 4000
        frame = sample_noisy(circuit, DEPOLARIZING, shots, seed=rng_seed,
                             method="frame")
        stabilizer = run_noisy_stabilizer(circuit, DEPOLARIZING, shots,
                                          seed=rng_seed + 1)
        frame_mismatch = (frame.noisy_bits[:, 0] !=
                          frame.noisy_bits[:, 2]).mean()
        stab_mismatch = (stabilizer[:, 0] != stabilizer[:, 2]).mean()
        assert frame_mismatch == pytest.approx(stab_mismatch, abs=0.04)

    def test_stabilizer_runner_rejects_non_clifford(self):
        circuit = QuantumCircuit(1, 1)
        circuit.t(0)
        circuit.measure(0, 0)
        with pytest.raises(NoiseSamplingError, match="Clifford"):
            run_noisy_stabilizer(circuit, DEPOLARIZING, 2)


class TestFrameVsStatevector:
    def test_bit_identical_flips_on_deterministic_circuit(self, rng_seed):
        # Same site draws, deterministic records: both exact methods
        # must produce the same flip table shot for shot.
        circuit = deterministic_feedback_circuit()
        frame = sample_noisy(circuit, DEPOLARIZING, 300, seed=rng_seed,
                             method="frame")
        statevector = sample_noisy(circuit, DEPOLARIZING, 300,
                                   seed=rng_seed, method="statevector")
        assert np.array_equal(frame.flips, statevector.flips)
        assert np.array_equal(frame.noisy_bits, statevector.noisy_bits)


class TestSwapAndDelay:
    def test_swap_frame_rule_matches_statevector(self, rng_seed):
        # Regression: 'swap' had no frame propagation rule and crashed.
        circuit = QuantumCircuit(3, 3)
        circuit.x(0)
        circuit.swap(0, 1)
        circuit.swap(1, 2)
        for q in range(3):
            circuit.measure(q, q)
        frame = sample_noisy(circuit, DEPOLARIZING, 200, seed=rng_seed,
                             method="frame")
        statevector = sample_noisy(circuit, DEPOLARIZING, 200,
                                   seed=rng_seed, method="statevector")
        assert np.array_equal(frame.noisy_bits, statevector.noisy_bits)

    def test_zero_noise_swap_runs(self, rng_seed):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.swap(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        sample = sample_noisy(circuit, NoiseModel(), 4, seed=rng_seed,
                              method="frame")
        assert np.array_equal(sample.noisy_bits,
                              np.tile([0, 1], (4, 1)))

    def test_delay_damping_needs_config(self):
        # Regression: with config=None (lifetime-integrated idle
        # channels active) delay slots must not add damping sites —
        # that would charge the decoder-wait decay twice.
        from repro.noise.sampler import compile_noise_program
        circuit = QuantumCircuit(1)
        circuit.gate("delay", 0, params=(5000.0,))
        model = NoiseModel(t1_us=150.0)
        _, without_config = compile_noise_program(circuit, model, None,
                                                  None)
        assert without_config == 0
        from repro.sim.config import SimulationConfig
        _, with_config = compile_noise_program(circuit, model, None,
                                               SimulationConfig())
        assert with_config == 1


class TestProxyConvergence:
    def test_idle_only_survival_matches_circuit_fidelity(self, rng_seed):
        # Measurement-free circuit + idle-only channels: the expected
        # survival is EXACTLY the closed-form proxy.
        n = 5
        circuit = QuantumCircuit(n)
        for q in range(n):
            circuit.h(q)
        for q in range(n - 1):
            circuit.cx(q, q + 1)
        lifetimes = {q: 30000.0 + 8000.0 * q for q in range(n)}
        idle = idle_channels_from_lifetimes(lifetimes, t1_us=150.0)
        sample = sample_noisy(circuit, NoiseModel(t1_us=150.0), 20000,
                              seed=rng_seed, idle_channels=idle)
        estimate = survival_fidelity(sample)
        proxy = circuit_fidelity(lifetimes, t1_us=150.0)
        assert estimate.ci_low - 0.005 <= proxy <= estimate.ci_high + 0.005


class TestMethodSelection:
    def test_auto_prefers_frame_for_clifford(self):
        assert choose_method(ghz_circuit()) == "frame"

    def test_auto_statevector_for_small_non_clifford(self):
        circuit = QuantumCircuit(4, 4)
        circuit.t(0)
        assert choose_method(circuit) == "statevector"

    def test_auto_frame_approx_beyond_statevector_reach(self):
        circuit = QuantumCircuit(30)
        circuit.t(0)
        assert choose_method(circuit) == "frame_approx"

    def test_auto_routes_conditional_resets_to_statevector(self):
        # Clifford, but frame paths cannot branch resets on noisy bits.
        from repro.quantum.circuit import Operation
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.add(Operation("reset", (1,), condition=(0, 1)))
        assert choose_method(circuit) == "statevector"
        sample = sample_noisy(circuit, DEPOLARIZING, 8, method="auto")
        assert sample.method == "statevector"
        big = QuantumCircuit(30, 1)
        big.measure(0, 0)
        big.add(Operation("reset", (1,), condition=(0, 1)))
        with pytest.raises(NoiseSamplingError, match="no sampling method"):
            choose_method(big)

    def test_frame_rejects_non_clifford(self):
        circuit = QuantumCircuit(2, 1)
        circuit.t(0)
        circuit.measure(0, 0)
        with pytest.raises(NoiseSamplingError, match="Clifford"):
            sample_noisy(circuit, DEPOLARIZING, 4, method="frame")

    def test_frame_approx_runs_non_clifford(self, rng_seed):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.t(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        for q in range(3):
            circuit.measure(q, q)
        sample = sample_noisy(circuit, DEPOLARIZING, 200, seed=rng_seed,
                              method="frame_approx")
        assert sample.method == "frame_approx"
        assert 0 < sample.record_error_count < 200

    def test_chunking_is_invisible(self, rng_seed, monkeypatch):
        import repro.noise.sampler as sampler_module
        circuit = deterministic_feedback_circuit()
        whole = sample_noisy(circuit, DEPOLARIZING, 100, seed=rng_seed,
                             method="frame")
        monkeypatch.setattr(sampler_module, "_MAX_UNIFORM_ENTRIES", 64)
        chunked = sample_noisy(circuit, DEPOLARIZING, 100, seed=rng_seed,
                               method="frame")
        assert np.array_equal(whole.flips, chunked.flips)
        assert np.array_equal(whole.survival, chunked.survival)


class TestEstimator:
    def test_wilson_interval_extremes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and 0.0 < high < 0.15
        low, high = wilson_interval(50, 50)
        assert 0.85 < low < 1.0 and high == 1.0
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(7, 5)

    def test_record_and_survival_fidelity(self, rng_seed):
        sample = sample_noisy(deterministic_feedback_circuit(),
                              DEPOLARIZING, 500, seed=rng_seed)
        record = record_fidelity(sample)
        survival = survival_fidelity(sample)
        assert 0.0 < survival.estimate <= record.estimate <= 1.0
        assert record.ci_low <= record.estimate <= record.ci_high

    def test_estimate_fidelity_statistics(self, rng_seed):
        circuit = deterministic_feedback_circuit()
        est = estimate_fidelity(circuit, DEPOLARIZING, 200, seed=rng_seed)
        assert isinstance(est, FidelityEstimate)
        assert est.method == "frame"
        assert est.error_rate == pytest.approx(1.0 - est.estimate)
        with pytest.raises(ValueError, match="statistic"):
            estimate_fidelity(circuit, DEPOLARIZING, 10, statistic="nope")

    def test_fidelity_decreases_with_noise(self, rng_seed):
        circuit = deterministic_feedback_circuit()
        quiet = estimate_fidelity(
            circuit, NoiseModel(gate_1q=1e-4, gate_2q=1e-3), 2000,
            seed=rng_seed)
        loud = estimate_fidelity(
            circuit, NoiseModel(gate_1q=1e-2, gate_2q=1e-1), 2000,
            seed=rng_seed)
        assert loud.estimate < quiet.estimate
