"""NoiseModel round-tripping, validation, presets, channel resolution."""

import pytest

from repro.noise import (PRESETS, NoiseModel, NoiseModelError, derive_seed,
                         preset, resolve_noise_model)


class TestRoundTrip:
    def test_json_identity(self):
        model = NoiseModel(gate_1q=1e-3, gate_2q=1e-2, measure_flip=5e-4,
                           t1_us=120.0, t2_us=90.0,
                           overrides=(("cz", 0.02), ("h", 1e-4)))
        assert NoiseModel.from_json(model.to_json()) == model

    def test_default_round_trip(self):
        model = NoiseModel()
        assert NoiseModel.from_json(model.to_json()) == model
        assert model.is_zero

    def test_overrides_canonicalized(self):
        a = NoiseModel(overrides=(("z", 0.1), ("a", 0.2)))
        b = NoiseModel(overrides=(("a", 0.2), ("z", 0.1)))
        assert a == b

    def test_overrides_accept_mapping_and_pair_lists(self):
        # A dict is the shape to_dict()/the README document; JSON
        # decoding naturally produces lists of pairs.  All shapes must
        # normalize to the same canonical value.
        from_dict = NoiseModel(overrides={"cz": 0.02, "h": 0.001})
        from_pairs = NoiseModel(overrides=(["h", 0.001], ["cz", 0.02]))
        canonical = NoiseModel(overrides=(("cz", 0.02), ("h", 0.001)))
        assert from_dict == from_pairs == canonical
        assert NoiseModel.from_json(from_pairs.to_json()) == from_pairs

    def test_malformed_overrides_raise_model_error(self):
        with pytest.raises(NoiseModelError, match="overrides"):
            NoiseModel(overrides=("cz",))
        with pytest.raises(NoiseModelError, match="overrides"):
            NoiseModel(overrides=(("cz", "fast"),))

    def test_unknown_field_rejected(self):
        with pytest.raises(NoiseModelError, match="unknown"):
            NoiseModel.from_dict({"gate_3q": 0.1})


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"gate_1q": -0.1},
        {"gate_2q": 1.5},
        {"measure_flip": 2.0},
        {"t1_us": 0.0},
        {"t1_us": -5.0},
        {"t1_us": 50.0, "t2_us": 0.0},
        {"t1_us": 50.0, "t2_us": 120.0},
        {"t2_us": 100.0},
        {"overrides": (("cx", 0.1), ("cx", 0.2))},
        {"overrides": (("cx", 1.5),)},
        {"overrides": (("", 0.5),)},
    ])
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(NoiseModelError):
            NoiseModel(**kwargs)


class TestChannels:
    def test_gate_rate_override_wins(self):
        model = NoiseModel(gate_1q=1e-3, gate_2q=1e-2,
                           overrides=(("cz", 0.5),))
        assert model.gate_rate("cz", 2) == 0.5
        assert model.gate_rate("cx", 2) == 1e-2
        assert model.gate_rate("h", 1) == 1e-3

    def test_gate_channels_depolarizing_plus_damping(self):
        model = NoiseModel(gate_2q=0.01, t1_us=100.0)
        channels = model.gate_channels("cx", (3, 5), duration_ns=40.0)
        supports = [qubits for qubits, _ in channels]
        assert supports == [(3, 5), (3,), (5,)]

    def test_zero_rate_yields_no_channels(self):
        assert NoiseModel().gate_channels("cx", (0, 1), 40.0) == []
        assert NoiseModel().measure_channel() is None


class TestPresets:
    def test_all_presets_round_trip(self):
        for name, model in PRESETS.items():
            assert NoiseModel.from_json(model.to_json()) == model, name

    def test_preset_lookup(self):
        assert preset("depolarizing_1e3").gate_1q == pytest.approx(1e-3)
        with pytest.raises(NoiseModelError, match="unknown noise preset"):
            preset("nope")

    def test_resolve_preset_name(self):
        assert resolve_noise_model("zero") == NoiseModel()

    def test_resolve_json_file(self, tmp_path):
        path = tmp_path / "model.json"
        model = NoiseModel(gate_1q=0.25)
        path.write_text(model.to_json())
        assert resolve_noise_model(str(path)) == model

    def test_resolve_garbage_raises(self):
        with pytest.raises(NoiseModelError, match="neither a preset"):
            resolve_noise_model("/nonexistent/model.json")


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed("a", 1, 0.5) == derive_seed("a", 1, 0.5)
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert 0 <= derive_seed("x") <= 0xFFFFFFFF
