"""Noise end to end: sweep determinism, BENCH schema v2, CLI, device
hooks.

The non-negotiable property: the same ``NoiseModel`` + seed produces
bit-identical shot tables — and therefore byte-identical BENCH rows —
across the serial runner, a spawn-started process pool, and a
warm-cache replay.
"""

import json
import os

import numpy as np
import pytest

from repro.compiler.driver import run_circuit
from repro.harness.benchjson import (BENCH_SCHEMA_VERSION, BenchSchemaError,
                                     load_bench, make_bench, validate_bench,
                                     write_bench)
from repro.harness.parallel import run_tasks, tasks_from_spec
from repro.harness.spec import SweepSpec, SweepSpecError
from repro.harness.sweep import main as sweep_main
from repro.harness.sweep import run_sweep
from repro.noise import NoiseModel, preset
from repro.quantum.statevector import StatevectorBackend
from repro.quantum.teleport import build_long_range_cnot_circuit

NOISY_SPEC = SweepSpec(workloads=("bv_n400", "repetition_d25"),
                       schemes=("bisp", "lockstep"), scales=(0.02,),
                       noise=preset("depolarizing_1e3"), noise_shots=64)

DAMPING_SPEC = SweepSpec(workloads=("bv_n400",),
                         schemes=("bisp", "lockstep"), scales=(0.02,),
                         noise=preset("damping_150us"), noise_shots=128)


class TestSpecNoiseField:
    def test_round_trip_identity(self):
        assert SweepSpec.from_json(NOISY_SPEC.to_json()) == NOISY_SPEC

    def test_noise_validation(self):
        with pytest.raises(SweepSpecError, match="noise_shots"):
            SweepSpec(noise_shots=0)
        with pytest.raises(SweepSpecError, match="NoiseModel"):
            SweepSpec(noise={"gate_1q": 0.1})

    def test_bad_noise_json_rejected(self):
        data = json.loads(NOISY_SPEC.to_json())
        data["noise"] = {"gate_9q": 1.0}
        with pytest.raises(SweepSpecError, match="bad noise"):
            SweepSpec.from_dict(data)


class TestNoisySweepDeterminism:
    def test_serial_rows_carry_fidelity(self):
        rows, _ = run_sweep(NOISY_SPEC, processes=1)
        assert len(rows) == 4
        for row in rows:
            assert 0.0 <= row["fidelity_empirical"] <= 1.0
            assert row["fidelity_ci_low"] <= row["fidelity_empirical"] \
                <= row["fidelity_ci_high"]
            assert row["noise_shots"] == 64
            assert row["noise_method"] in ("frame", "statevector",
                                           "frame_approx")

    @pytest.mark.parallel
    def test_serial_spawn_and_cache_bit_identical(self, tmp_path):
        serial, _ = run_sweep(NOISY_SPEC, processes=1)
        spawned, _ = run_sweep(NOISY_SPEC, processes=2,
                               start_method="spawn",
                               cache_dir=str(tmp_path))
        replayed, stats = run_sweep(NOISY_SPEC, processes=1,
                                    cache_dir=str(tmp_path))
        assert serial == spawned == replayed
        assert stats.hits == len(serial) and stats.misses == 0

    def test_zero_rate_noise_matches_noiseless_rows(self):
        noiseless = SweepSpec(workloads=("repetition_d25",),
                              schemes=("bisp",), scales=(0.02,))
        zero = SweepSpec(workloads=("repetition_d25",), schemes=("bisp",),
                         scales=(0.02,), noise=NoiseModel(), noise_shots=16)
        plain_rows, _ = run_sweep(noiseless, processes=1)
        zero_rows, _ = run_sweep(zero, processes=1)
        (plain,) = plain_rows
        (zeroed,) = zero_rows
        assert zeroed["fidelity_empirical"] == 1.0
        stripped = {k: v for k, v in zeroed.items()
                    if not (k.startswith("fidelity_ci") or
                            k.startswith("noise_") or
                            k == "fidelity_empirical")}
        assert stripped == plain

    def test_damping_noise_separates_schemes(self):
        # Idle decoherence integrates the device-measured activity
        # windows, so the scheme that idles longer scores lower.
        rows, _ = run_sweep(DAMPING_SPEC, processes=1)
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["lockstep"]["fidelity_empirical"] < \
            by_scheme["bisp"]["fidelity_empirical"]
        for row in rows:
            assert abs(row["fidelity_empirical"] - row["fidelity_proxy"]) \
                < 0.15

    def test_noise_changes_cache_key(self):
        noisy = tasks_from_spec(NOISY_SPEC)[0]
        noiseless = tasks_from_spec(SweepSpec(
            workloads=("bv_n400", "repetition_d25"),
            schemes=("bisp", "lockstep"), scales=(0.02,)))[0]
        assert noisy.key() == noiseless.key()
        assert noisy.cache_key() != noiseless.cache_key()
        assert noisy.noise_seed() == noisy.noise_seed()

    def test_failing_noise_cell_surfaces(self):
        # statevector-unreachable + non-Clifford would fall back to
        # frame_approx; force an impossible method via a tiny spec to
        # prove run_tasks propagates sampler errors as cell failures.
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(0.02,), noise=preset("depolarizing_1e3"),
                         noise_shots=4)
        results, _ = run_tasks(tasks_from_spec(spec), processes=1)
        assert len(results) == 1  # healthy baseline for the machinery


class TestBenchSchemaV2:
    BASE_ROW = {"workload": "w", "scheme": "bisp", "scale": 0.1,
                "shots": 1, "num_qubits": 2, "num_ops": 2,
                "feedback_ops": 0, "makespan_cycles": 100,
                "sync_stall_cycles": 0, "runtime_ns": 400.0,
                "fidelity_proxy": 1.0}
    NOISE_COLS = {"fidelity_empirical": 0.75, "fidelity_ci_low": 0.7,
                  "fidelity_ci_high": 0.8, "noise_method": "frame",
                  "noise_shots": 64, "noise_seed": 42}

    def test_current_version_is_3(self):
        doc = make_bench("demo", [{"label": "x", "value": 1}])
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION == 3

    def test_noisy_sweep_row_validates(self):
        row = dict(self.BASE_ROW, **self.NOISE_COLS)
        doc = make_bench("demo", [row], kind="sweep")
        assert validate_bench(doc) is doc

    def test_partial_noise_columns_rejected(self):
        row = dict(self.BASE_ROW, fidelity_empirical=0.5)
        with pytest.raises(BenchSchemaError, match="noisy sweep rows"):
            make_bench("demo", [row], kind="sweep")

    def test_noise_column_types_checked(self):
        row = dict(self.BASE_ROW, **self.NOISE_COLS)
        row["noise_shots"] = "many"
        with pytest.raises(BenchSchemaError, match="noise_shots"):
            make_bench("demo", [row], kind="sweep")

    def test_v1_artifacts_load_read_only(self, tmp_path):
        # The checked-in CI baseline is still schema v1: it must load
        # (regression gating keeps working) but not re-write.
        baseline = os.path.join(os.path.dirname(__file__), "..", "..",
                                "benchmarks", "baselines",
                                "BENCH_sweep_smoke.json")
        doc = load_bench(baseline)
        assert doc["schema_version"] == 1
        with pytest.raises(BenchSchemaError, match="read-only"):
            write_bench(str(tmp_path), doc)

    def test_unsupported_version_rejected(self):
        doc = make_bench("demo", [{"label": "x", "value": 1}])
        doc["schema_version"] = 4
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_bench(doc)


class TestSweepCliNoise:
    def test_noise_preset_flag(self, tmp_path, capsys):
        out = str(tmp_path / "artifacts")
        code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                           "--workloads", "repetition_d25",
                           "--noise", "depolarizing_1e3",
                           "--noise-shots", "32",
                           "--out", out, "--name", "noisy", "--quiet"])
        assert code == 0
        doc = load_bench(os.path.join(out, "BENCH_noisy.json"))
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        (row,) = doc["results"]
        assert row["noise_shots"] == 32
        assert 0.0 <= row["fidelity_empirical"] <= 1.0
        assert doc["spec"]["noise"]["gate_1q"] == pytest.approx(1e-3)

    def test_noise_model_file_flag(self, tmp_path):
        model_path = str(tmp_path / "model.json")
        with open(model_path, "w") as handle:
            handle.write(NoiseModel(measure_flip=0.25).to_json())
        out = str(tmp_path / "artifacts")
        code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                           "--workloads", "repetition_d25",
                           "--noise", model_path, "--noise-shots", "32",
                           "--out", out, "--name", "filemodel", "--quiet"])
        assert code == 0
        doc = load_bench(os.path.join(out, "BENCH_filemodel.json"))
        assert doc["spec"]["noise"]["measure_flip"] == pytest.approx(0.25)

    def test_unknown_noise_source_fails(self, capsys):
        code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                           "--workloads", "repetition_d25",
                           "--noise", "not_a_preset", "--quiet"])
        assert code == 1
        assert "neither a preset" in capsys.readouterr().err

    def test_print_spec_round_trips_noise(self, capsys):
        assert sweep_main(["--print-spec", "--noise", "damping_150us",
                           "--workloads", "bv_n400"]) == 0
        spec = SweepSpec.from_json(capsys.readouterr().out)
        assert spec.noise == preset("damping_150us")

    def test_spec_file_noise_flags_override_independently(self, tmp_path,
                                                          capsys):
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(SweepSpec(workloads=("bv_n400",),
                                   schemes=("bisp",), scales=(0.02,),
                                   noise=preset("damping_150us"),
                                   noise_shots=1024).to_json())
        # No noise flags: the spec file's model AND shot count survive.
        assert sweep_main(["--spec", spec_path, "--print-spec"]) == 0
        spec = SweepSpec.from_json(capsys.readouterr().out)
        assert spec.noise == preset("damping_150us")
        assert spec.noise_shots == 1024
        # --noise alone keeps the spec's noise_shots.
        assert sweep_main(["--spec", spec_path, "--print-spec",
                           "--noise", "depolarizing_1e3"]) == 0
        spec = SweepSpec.from_json(capsys.readouterr().out)
        assert spec.noise == preset("depolarizing_1e3")
        assert spec.noise_shots == 1024
        # --noise-shots alone keeps the spec's model.
        assert sweep_main(["--spec", spec_path, "--print-spec",
                           "--noise-shots", "64"]) == 0
        spec = SweepSpec.from_json(capsys.readouterr().out)
        assert spec.noise == preset("damping_150us")
        assert spec.noise_shots == 64


class TestDeviceHooks:
    def test_noise_model_flips_backend_state(self):
        circuit = build_long_range_cnot_circuit(3)
        loud = NoiseModel(gate_1q=0.5, gate_2q=0.5, measure_flip=0.5)
        noiseless = run_circuit(
            circuit, scheme="bisp",
            backend=StatevectorBackend(circuit.num_qubits, seed=1),
            device_seed=9)
        noisy = run_circuit(
            circuit, scheme="bisp",
            backend=StatevectorBackend(circuit.num_qubits, seed=1),
            device_seed=9, noise_model=loud)
        assert noiseless.system.device.noise_events == 0
        assert noisy.system.device.noise_events > 0

    def test_device_noise_is_deterministic(self):
        circuit = build_long_range_cnot_circuit(3)
        model = NoiseModel(measure_flip=0.3)

        def meas_values(seed):
            result = run_circuit(circuit, scheme="bisp", backend=None,
                                 device_seed=9, noise_model=model,
                                 noise_seed=seed)
            return [r.value for r in result.system.telf.records
                    if r.kind == "meas"]

        assert meas_values(5) == meas_values(5)
        # Different noise seeds must eventually flip differently.
        assert len({tuple(meas_values(seed)) for seed in range(16)}) > 1

    def test_default_stays_noiseless(self):
        # No noise model: the pre-noise RNG streams are untouched, so
        # existing seeds reproduce historical outcomes.
        circuit = build_long_range_cnot_circuit(3)
        a = run_circuit(circuit, scheme="bisp", backend=None, device_seed=9)
        b = run_circuit(circuit, scheme="bisp", backend=None, device_seed=9)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.system.device.noise_events == 0


def test_noisy_bits_shape_and_dtype():
    from repro.noise import sample_noisy
    circuit = build_long_range_cnot_circuit(3)
    circuit.measure(0, circuit.num_clbits - 2)
    circuit.measure(3, circuit.num_clbits - 1)
    sample = sample_noisy(circuit, preset("depolarizing_1e3"), 16, seed=2)
    assert sample.flips.shape == (16, circuit.num_clbits)
    assert sample.flips.dtype == np.uint8
    assert sample.noisy_bits.shape == (16, circuit.num_clbits)
