"""Pauli channels: validation, sampling, composition, twirl identities."""

import pytest

from repro.fidelity import survival_probability
from repro.noise import (NoiseChannelError, PauliChannel, depolarizing,
                         idle_channels_from_lifetimes, measurement_flip,
                         pauli_twirled_damping)


class TestPauliChannel:
    def test_terms_canonicalized_and_merged(self):
        channel = PauliChannel(1, (("z", 0.1), ("X", 0.05), ("Z", 0.1)))
        assert channel.terms == (("X", 0.05), ("Z", 0.2))
        assert channel.identity_probability == pytest.approx(0.75)

    def test_sampling_bins(self):
        channel = PauliChannel(1, (("X", 0.25), ("Z", 0.25)))
        assert channel.sample(0.1) == "X"
        assert channel.sample(0.3) == "Z"
        assert channel.sample(0.9) is None

    @pytest.mark.parametrize("terms,match", [
        ((("I", 0.1),), "identity"),
        ((("X", -0.2),), "negative"),
        ((("X", 0.7), ("Z", 0.7)), "sum"),
        ((("XY", 0.1),), "length"),
        ((("Q", 0.1),), "I/X/Y/Z"),
    ])
    def test_invalid_channels_rejected(self, terms, match):
        with pytest.raises(NoiseChannelError, match=match):
            PauliChannel(1, terms)

    def test_compose_self_inverse_errors_cancel(self):
        flip = PauliChannel(1, (("X", 1.0),))
        composed = flip.compose(flip)
        # X then X is certainly the identity.
        assert composed.identity_probability == pytest.approx(1.0)

    def test_compose_independent_rates(self):
        a = PauliChannel(1, (("X", 0.1),))
        b = PauliChannel(1, (("Z", 0.2),))
        combined = dict(a.compose(b).terms)
        assert combined["X"] == pytest.approx(0.1 * 0.8)
        assert combined["Z"] == pytest.approx(0.9 * 0.2)
        assert combined["Y"] == pytest.approx(0.1 * 0.2)  # X*Z ~ Y


class TestStandardChannels:
    def test_depolarizing_1q_shares(self):
        channel = depolarizing(0.3, 1)
        assert dict(channel.terms) == pytest.approx(
            {"X": 0.1, "Y": 0.1, "Z": 0.1})

    def test_depolarizing_2q_covers_15_paulis(self):
        channel = depolarizing(0.15, 2)
        assert len(channel.terms) == 15
        assert channel.error_probability == pytest.approx(0.15)

    def test_depolarizing_validation(self):
        with pytest.raises(NoiseChannelError):
            depolarizing(1.5, 1)
        with pytest.raises(NoiseChannelError):
            depolarizing(0.1, 3)

    def test_twirled_damping_matches_proxy_survival(self):
        # The twirled channel's identity probability IS the Figure-16
        # per-qubit survival — the analytic/Monte-Carlo link.
        for duration, t1, t2 in [(500.0, 150.0, 150.0), (2000.0, 30.0, 50.0),
                                 (100.0, 200.0, 400.0)]:
            channel = pauli_twirled_damping(duration, t1, t2)
            assert channel.identity_probability == pytest.approx(
                survival_probability(duration, t1, t2), abs=1e-12)

    def test_twirled_damping_limits(self):
        # t -> infinity approaches the fully depolarizing channel.
        late = dict(pauli_twirled_damping(1e12, 50.0).terms)
        assert late["X"] == pytest.approx(0.25, abs=1e-6)
        assert late["Z"] == pytest.approx(0.25, abs=1e-6)
        # Pure amplitude damping (T2 = 2*T1): dephasing vanishes to
        # first order (the exact residue is (1 - e^{-t/T2})^2 / 4).
        pure = dict(pauli_twirled_damping(1000.0, 50.0, 100.0).terms)
        assert pure.get("Z", 0.0) == pytest.approx(0.0, abs=1e-4)

    @pytest.mark.parametrize("kwargs", [
        {"t1_us": 0.0}, {"t1_us": -3.0}, {"t1_us": 50.0, "t2_us": 0.0},
        {"t1_us": 50.0, "t2_us": -1.0}, {"t1_us": 50.0, "t2_us": 150.0},
    ])
    def test_twirled_damping_guards(self, kwargs):
        with pytest.raises(NoiseChannelError):
            pauli_twirled_damping(100.0, **kwargs)

    def test_measurement_flip(self):
        assert dict(measurement_flip(0.02).terms) == {"X": 0.02}

    def test_idle_channels_from_lifetimes(self):
        channels = idle_channels_from_lifetimes(
            {0: 40000.0, 1: 0.0, 2: 10000.0}, t1_us=150.0)
        assert sorted(channels) == [0, 2]
        assert channels[0].error_probability > \
            channels[2].error_probability
