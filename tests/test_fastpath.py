"""Strict parsing of the fast-path environment switches.

``REPRO_NO_FASTPATH`` is the escape hatch differential tests rely on; a
spelling that silently parses as "fast path enabled" (the pre-fix
behavior of ``=on`` and values with surrounding whitespace) would run
the wrong interpreter while claiming a differential check.  Every
recognized spelling is enumerated here, and anything else must raise.
"""

import pytest

from repro.errors import ReproError
from repro.fastpath import (env_flag, fastpath_enabled, lanes_enabled,
                            replay_tier)

DISABLING = ["1", "true", "yes", "on", "y", "t", "enabled",
             "TRUE", "Yes", "ON", "EnAbLeD", " 1 ", "\ttrue\n", "1 "]
ENABLING = ["", "0", "false", "no", "off", "n", "f", "disabled",
            "FALSE", "No", "OFF", " 0 ", "  "]
GARBAGE = ["2", "maybe", "ja", "enable", "o", "none", "null", "-1"]


class TestNoFastpathParsing:
    @pytest.mark.parametrize("value", DISABLING)
    def test_truthy_spellings_disable(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", value)
        assert not fastpath_enabled()
        assert replay_tier() == "legacy"

    @pytest.mark.parametrize("value", ENABLING)
    def test_falsy_spellings_enable(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", value)
        assert fastpath_enabled()

    def test_unset_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        assert fastpath_enabled()

    @pytest.mark.parametrize("value", GARBAGE)
    def test_garbage_raises(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", value)
        with pytest.raises(ReproError, match="REPRO_NO_FASTPATH"):
            fastpath_enabled()

    def test_error_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "bogus")
        with pytest.raises(ReproError, match="bogus"):
            env_flag("REPRO_NO_FASTPATH")


class TestReplayTier:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_REPLAY_TIER", raising=False)
        assert replay_tier() == "vector"

    @pytest.mark.parametrize("value,tier", [
        ("vector", "vector"), ("block", "block"), ("legacy", "legacy"),
        ("VECTOR", "vector"), (" block ", "block"), ("", "vector"),
    ])
    def test_explicit_tiers(self, value, tier, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_REPLAY_TIER", value)
        assert replay_tier() == tier

    def test_no_fastpath_overrides_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "yes")
        monkeypatch.setenv("REPRO_REPLAY_TIER", "vector")
        assert replay_tier() == "legacy"

    def test_unknown_tier_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_REPLAY_TIER", "simd")
        with pytest.raises(ReproError, match="REPRO_REPLAY_TIER"):
            replay_tier()


class TestLanesFlag:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_LANES", raising=False)
        assert lanes_enabled()

    @pytest.mark.parametrize("value", ["1", "on", " true "])
    def test_disable_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LANES", value)
        assert not lanes_enabled()

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LANES", "nope...")
        with pytest.raises(ReproError):
            lanes_enabled()
