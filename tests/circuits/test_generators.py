"""Benchmark circuit generators: functional correctness."""


import pytest

from repro.circuits import (build_adder, build_bv, build_ghz,
                            build_logical_t, build_memory_experiment,
                            build_patch, build_qft, build_w_state,
                            register_size, secret_of)
from repro.quantum.statevector import run_statevector
from repro.quantum.stabilizer import run_stabilizer


class TestAdder:
    def test_register_size_conventions(self):
        assert register_size(10) == 4   # even: (n-2)/2
        assert register_size(9) == 4    # odd: (n-1)/2, no carry-out
        assert register_size(577) == 288
        assert register_size(1153) == 576

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 7), (2, 6)])
    def test_addition_is_correct(self, a, b):
        # 3-bit operands (n=8 -> k=3 with carry-out).
        circuit = build_adder(8, a_value=a, b_value=b)
        _, cbits = run_statevector(circuit, seed=0)
        total = sum(bit << i for i, bit in enumerate(cbits))
        assert total == a + b

    def test_no_carry_out_when_odd(self):
        circuit = build_adder(9, a_value=7, b_value=8)
        _, cbits = run_statevector(circuit, seed=0)
        total = sum(bit << i for i, bit in enumerate(cbits))
        assert total == (7 + 8) % 16  # carry dropped

    def test_operands_restored(self):
        # CDKM restores the a register; check via extra measurements.
        circuit = build_adder(8, a_value=5, b_value=2, measure=False)
        backend, _ = run_statevector(circuit, seed=0)
        a_qubits = [1, 3, 5]
        restored = sum(int(round(backend.probability_one(q))) << i
                       for i, q in enumerate(a_qubits))
        assert restored == 5

    def test_minimum_size_rejected(self):
        with pytest.raises(ValueError):
            build_adder(3)


class TestBV:
    def test_secret_recovered(self):
        for n, secret in ((6, 0b10110), (8, 0b1010101)):
            circuit = build_bv(n, secret=secret)
            _, cbits = run_statevector(circuit, seed=1)
            assert sum(bit << i for i, bit in enumerate(cbits)) == secret

    def test_default_secret(self):
        n = 8
        circuit = build_bv(n)
        _, cbits = run_statevector(circuit, seed=1)
        assert sum(bit << i for i, bit in enumerate(cbits)) == secret_of(n)

    def test_cx_count_equals_secret_weight(self):
        circuit = build_bv(7, secret=0b10101)
        assert circuit.count_ops()["cx"] == 3


class TestQFT:
    def test_gate_count_full(self):
        n = 6
        circuit = build_qft(n, with_swaps=False)
        counts = circuit.count_ops()
        assert counts["h"] == n
        assert counts["cp"] == n * (n - 1) // 2

    def test_approximation_drops_small_rotations(self):
        full = build_qft(20, with_swaps=False)
        approx = build_qft(20, with_swaps=False, max_interaction_distance=4)
        assert approx.count_ops()["cp"] < full.count_ops()["cp"]

    def test_qft_of_zero_is_uniform(self):
        circuit = build_qft(4)
        backend, _ = run_statevector(circuit, seed=0)
        probs = backend.probabilities()
        assert probs == pytest.approx([1 / 16.0] * 16)

    def test_qft_frequency_state(self):
        # QFT|1> has uniform magnitudes with linear phase ramp.
        circuit = build_qft(3)
        from repro.quantum.statevector import StatevectorBackend
        backend = StatevectorBackend(3)
        backend.apply_gate("x", (0,))
        backend.run_circuit(circuit)
        probs = backend.probabilities()
        assert probs == pytest.approx([1 / 8.0] * 8)


class TestWState:
    def test_single_excitation_uniform(self):
        n = 5
        circuit = build_w_state(n)
        backend, _ = run_statevector(circuit, seed=0)
        probs = backend.probabilities()
        for q in range(n):
            assert probs[1 << q] == pytest.approx(1.0 / n)
        assert sum(probs[1 << q] for q in range(n)) == pytest.approx(1.0)

    def test_measurement_has_exactly_one_excitation(self):
        circuit = build_w_state(6, measure=True)
        for seed in range(5):
            _, cbits = run_statevector(circuit, seed=seed)
            assert sum(cbits) == 1


class TestGHZ:
    def test_stabilizer_scale(self):
        backend, _ = run_stabilizer(build_ghz(64), seed=0)
        assert len(set(backend.measure_all())) == 1


class TestSurfaceCode:
    def test_patch_qubit_count(self):
        for d in (2, 3, 5, 7):
            patch = build_patch(d)
            assert patch.num_qubits == 2 * d * d - 1
            assert len(patch.data) == d * d
            assert len(patch.x_ancillas) + len(patch.z_ancillas) == d * d - 1

    def test_stabilizer_weights(self):
        patch = build_patch(3)
        for coords in list(patch.x_ancillas.values()) + \
                list(patch.z_ancillas.values()):
            assert len(coords) in (2, 4)

    def test_logical_operators_span_patch(self):
        patch = build_patch(5)
        assert len(patch.logical_z_qubits()) == 5
        assert len(patch.logical_x_qubits()) == 5

    def test_memory_z_syndromes_trivial(self):
        """On a noise-free logical |0>, every Z syndrome is 0 and the data
        readout satisfies all Z-plaquette parities and logical-Z = +1."""
        circuit = build_memory_experiment(3, rounds=2)
        patch = circuit.metadata["patch"]
        for seed in (3, 11, 17):
            backend, cbits = run_stabilizer(circuit, seed=seed)
            ancillas = sorted(list(patch.x_ancillas) +
                              list(patch.z_ancillas))
            z_positions = [i for i, a in enumerate(ancillas)
                           if a in patch.z_ancillas]
            num_anc = len(ancillas)
            for round_index in range(2):
                for pos in z_positions:
                    assert cbits[round_index * num_anc + pos] == 0
            data = dict(zip(patch.data_qubits, cbits[2 * num_anc:]))
            for coords in patch.z_ancillas.values():
                parity = sum(data[patch.data[c]] for c in coords) % 2
                assert parity == 0
            logical = sum(data[q] for q in patch.logical_z_qubits()) % 2
            assert logical == 0

    def test_difference_syndrome_trivial_without_reset(self):
        """Without ancilla reset, round 2 reports s2 XOR m1 = 0 noiselessly
        (the QND property in difference form)."""
        circuit = build_memory_experiment(3, rounds=2)
        patch = circuit.metadata["patch"]
        backend, cbits = run_stabilizer(circuit, seed=11)
        num_anc = len(patch.x_ancillas) + len(patch.z_ancillas)
        assert cbits[num_anc:2 * num_anc] == [0] * num_anc

    def test_absolute_syndromes_repeat_with_reset(self):
        """With active reset, X outcomes are random but repeat each round
        (projective stabilizer measurement is QND)."""
        circuit = build_memory_experiment(3, rounds=2, active_reset=True)
        patch = circuit.metadata["patch"]
        backend, cbits = run_stabilizer(circuit, seed=11)
        num_anc = len(patch.x_ancillas) + len(patch.z_ancillas)
        assert cbits[:num_anc] == cbits[num_anc:2 * num_anc]
        assert any(cbits[:num_anc])  # X outcomes genuinely random


class TestLogicalT:
    def test_feedback_structure(self):
        circuit = build_logical_t(3, parallel_pairs=2)
        conditionals = [op for op in circuit if op.is_conditional]
        assert len(conditionals) > 0
        s_gates = [op for op in conditionals if op.name == "s"]
        cz_gates = [op for op in conditionals if op.name == "cz"]
        assert len(s_gates) == 2 * 3      # d per pair
        assert len(cz_gates) == 2 * 3     # d(d-1)/2 per pair

    def test_named_instances(self):
        from repro.circuits.logical_t import build_named
        circuit = build_named("logical_t_n432")
        assert circuit.name == "logical_t_n432"
        assert circuit.metadata["parallel_pairs"] == 2

    def test_qubit_counts_scale_with_pairs(self):
        one = build_logical_t(3, parallel_pairs=1)
        two = build_logical_t(3, parallel_pairs=2)
        assert two.num_qubits == 2 * one.num_qubits
