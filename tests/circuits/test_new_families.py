"""Registry circuit families: clifford_t, hidden_shift, repetition, qaoa."""

import pytest

from repro.circuits.clifford_t import build_clifford_t
from repro.circuits.hidden_shift import build_hidden_shift, default_shift
from repro.circuits.qaoa import build_qaoa, maxcut_edges
from repro.circuits.repetition import build_repetition_code
from repro.quantum.statevector import run_statevector


class TestCliffordT:
    def test_deterministic_default_seed(self):
        a = build_clifford_t(12)
        b = build_clifford_t(12)
        assert a.operations == b.operations

    def test_t_fraction_extremes(self):
        clifford_only = build_clifford_t(10, t_fraction=0.0)
        assert clifford_only.is_clifford
        t_only = build_clifford_t(10, t_fraction=1.0)
        names = {op.name for op in t_only if len(op.qubits) == 1}
        assert names <= {"t", "tdg"}
        assert not t_only.is_clifford

    def test_has_long_range_cx(self):
        circuit = build_clifford_t(30, seed=5)
        distances = {abs(op.qubits[0] - op.qubits[1])
                     for op in circuit.two_qubit_ops()}
        assert max(distances) > 1  # geometric tail reaches beyond neighbors

    def test_validation(self):
        with pytest.raises(ValueError):
            build_clifford_t(1)
        with pytest.raises(ValueError):
            build_clifford_t(8, t_fraction=1.5)


class TestHiddenShift:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_recovers_default_shift(self, n):
        circuit = build_hidden_shift(n)
        _, cbits = run_statevector(circuit, seed=0)
        measured = sum(bit << i for i, bit in enumerate(cbits))
        assert measured == default_shift(n)

    def test_recovers_custom_shift(self):
        circuit = build_hidden_shift(6, shift=0b011010)
        _, cbits = run_statevector(circuit, seed=0)
        assert sum(bit << i for i, bit in enumerate(cbits)) == 0b011010

    def test_odd_size_rounds_up_to_even(self):
        assert build_hidden_shift(5).num_qubits == 6

    def test_entangling_gates_span_half_register(self):
        circuit = build_hidden_shift(12)
        spans = {abs(op.qubits[0] - op.qubits[1])
                 for op in circuit.two_qubit_ops()}
        assert spans == {6}

    def test_validation(self):
        with pytest.raises(ValueError):
            build_hidden_shift(1)
        with pytest.raises(ValueError):
            build_hidden_shift(4, shift=1 << 10)


class TestRepetitionCode:
    def test_layout_and_counts(self):
        d, rounds = 4, 3
        circuit = build_repetition_code(d, rounds=rounds)
        assert circuit.num_qubits == 2 * d - 1
        assert circuit.num_clbits == rounds * (d - 1) + d
        # One feedback reset per ancilla per round.
        feedback = [op for op in circuit if op.is_conditional]
        assert len(feedback) == rounds * (d - 1)
        assert circuit.has_feedback

    def test_noiseless_memory_reads_zero(self):
        circuit = build_repetition_code(3, rounds=2)
        _, cbits = run_statevector(circuit, seed=7)
        assert set(cbits) == {0}  # no errors injected -> trivial syndromes

    def test_active_reset_off_is_static_rounds(self):
        circuit = build_repetition_code(3, rounds=2, active_reset=False)
        assert not circuit.has_feedback

    def test_validation(self):
        with pytest.raises(ValueError):
            build_repetition_code(1)
        with pytest.raises(ValueError):
            build_repetition_code(3, rounds=0)


class TestQaoa:
    def test_deterministic_default_seed(self):
        a = build_qaoa(10)
        b = build_qaoa(10)
        assert a.operations == b.operations

    def test_edges_unique_and_connected(self):
        edges = maxcut_edges(12, seed=3)
        assert len({tuple(sorted(e)) for e in edges}) == len(edges)
        ring = [(q, (q + 1) % 12) for q in range(12)]
        assert all(e in edges for e in ring)
        assert len(edges) > 12  # chords landed

    def test_structure(self):
        circuit = build_qaoa(8, layers=2)
        counts = circuit.count_ops()
        assert counts["measure"] == 8
        assert counts["h"] == 8
        assert counts["rx"] == 2 * 8  # one mixer layer per round
        assert counts["cx"] == 2 * counts["rz"]  # cx.rz.cx per cost edge

    def test_validation(self):
        with pytest.raises(ValueError):
            build_qaoa(2)
        with pytest.raises(ValueError):
            build_qaoa(8, layers=0)
