"""HISQ pre-decode: dense steps, fast blocks and the decode caches."""

from repro.isa.assembler import assemble
from repro.isa.decoded import (MIN_FAST_BLOCK, OP_CW_II, OP_HALT, OP_WAITI,
                               decode_cache_stats, decode_program)
from repro.isa.instructions import cw_ii, halt, sync, waiti
from repro.isa.program import Program


def _program(*instructions):
    return Program(name="p", instructions=list(instructions))


class TestDecode:
    def test_steps_match_instructions(self):
        program = assemble("waiti 5\ncw.i.i 2,9\nhalt")
        decoded = decode_program(program)
        assert decoded.n == 3
        assert decoded.steps[0][0] == OP_WAITI and decoded.steps[0][4] == 5
        assert decoded.steps[1][0] == OP_CW_II
        assert decoded.steps[1][4] == 2 and decoded.steps[1][5] == 9
        assert decoded.steps[2][0] == OP_HALT

    def test_fast_block_boundaries(self):
        # waits/cws form a block; halt terminates it.
        program = _program(waiti(5), cw_ii(0, 1), waiti(4), cw_ii(0, 2),
                           waiti(3), halt())
        decoded = decode_program(program)
        block = decoded.fast_block[0]
        assert block is not None and block.n == 5
        assert decoded.fast_block[4] is block
        assert block.start == 0
        assert decoded.fast_block[5] is None  # halt is stepwise
        # Positions before each instruction and item templates line up.
        assert block.pos_cum == [0, 5, 5, 9, 9, 12]
        assert [item[0:2] for item in block.items] == [(0, 5), (0, 9)]

    def test_short_runs_not_blocked(self):
        program = _program(waiti(1), halt())
        decoded = decode_program(program)
        assert all(b is None for b in decoded.fast_block)
        assert 1 < MIN_FAST_BLOCK

    def test_replay_end_budget_and_space(self):
        program = _program(waiti(1), cw_ii(0, 1), cw_ii(0, 2), cw_ii(0, 3),
                           waiti(2), halt())
        block = decode_program(program).fast_block[0]
        assert block.n == 5
        # Unlimited space: budget caps the slice.
        assert block.replay_end(0, 2, free=100) == 2
        assert block.replay_end(0, 100, free=100) == 5
        # Space for one push only: stop before the second codeword.
        assert block.replay_end(0, 100, free=1) == 2
        # No space at all: stop before the first codeword.
        assert block.replay_end(0, 100, free=0) == 1
        # Entering mid-block.
        assert block.replay_end(1, 100, free=1) == 2

    def test_sync_templates(self):
        program = _program(sync(3), waiti(4), cw_ii(0, 1), sync(0x1000, 7),
                           waiti(7), halt())
        block = decode_program(program).fast_block[0]
        kinds = [item[0] for item in block.items]
        assert kinds == [1, 0, 2]  # SyncN, Cw, SyncR

    def test_same_object_cached(self):
        program = assemble("waiti 5\ncw.i.i 0,1\nwaiti 2\ncw.i.i 0,2\nhalt")
        assert decode_program(program) is decode_program(program)

    def test_equal_content_shares_decode(self):
        # Interned instructions give equal programs identical instruction
        # objects, so recompilations share one decode.
        first = _program(waiti(5), cw_ii(0, 1), waiti(2), cw_ii(0, 2),
                         halt())
        second = _program(waiti(5), cw_ii(0, 1), waiti(2), cw_ii(0, 2),
                          halt())
        assert decode_program(first) is decode_program(second)

    def test_append_invalidates_instance_cache(self):
        program = _program(waiti(5), cw_ii(0, 1), waiti(2), cw_ii(0, 2))
        decoded = decode_program(program)
        program.append(halt())
        redecoded = decode_program(program)
        assert redecoded is not decoded
        assert redecoded.n == 5

    def test_cache_stats_shape(self):
        stats = decode_cache_stats()
        assert set(stats) == {"by_content", "step_memo", "pin_hits",
                              "content_hits", "misses"}
