"""Instruction construction, rendering and validation."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import (Instruction, addi, add, beq, bne, cw_ii,
                                    cw_ir, cw_ri, cw_rr, halt, jal, nop,
                                    recv, send, send_i, sync, waiti, waitr)


class TestConstruction:
    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            Instruction("frobnicate")

    def test_register_out_of_range_rejected(self):
        with pytest.raises(AssemblyError):
            Instruction("add", rd=32)

    def test_negative_register_rejected(self):
        with pytest.raises(AssemblyError):
            Instruction("add", rs1=-1)

    def test_addi_fields(self):
        instr = addi(3, 0, 120)
        assert (instr.rd, instr.rs1, instr.imm) == (3, 0, 120)

    def test_cw_ii_fields(self):
        instr = cw_ii(21, 2)
        assert instr.imm == 21 and instr.imm2 == 2

    def test_cw_register_variants(self):
        assert cw_ir(3, 7).rs2 == 7
        assert cw_ri(4, 9).rs1 == 4
        assert cw_rr(4, 5).rs1 == 4 and cw_rr(4, 5).rs2 == 5

    def test_sync_default_delta_zero(self):
        assert sync(2).imm2 == 0

    def test_sync_with_delta(self):
        instr = sync(0x100, 48)
        assert instr.imm == 0x100 and instr.imm2 == 48

    def test_send_and_recv(self):
        assert send(3, 5).rs1 == 5
        assert send_i(3, 1).imm2 == 1
        assert recv(7, 2).rd == 7

    def test_instructions_are_frozen(self):
        instr = nop()
        with pytest.raises(AttributeError):
            instr.rd = 1


class TestClassification:
    def test_quantum_instructions(self):
        for instr in (waiti(4), waitr(1), cw_ii(0, 1), sync(1),
                      send(0, 1), send_i(0, 1)):
            assert instr.is_quantum

    def test_classical_instructions(self):
        for instr in (addi(1, 0, 5), beq(1, 2, -3), halt(), nop()):
            assert not instr.is_quantum

    def test_branch_classification(self):
        assert beq(1, 2, 4).is_branch
        assert bne(1, 2, 4).is_branch
        assert jal(0, -4).is_branch
        assert not addi(1, 0, 1).is_branch


class TestRendering:
    def test_r_type_text(self):
        assert Instruction("add", rd=1, rs1=2, rs2=3).text() == "add $1,$2,$3"

    def test_i_type_text(self):
        assert addi(2, 0, 120).text() == "addi $2,$0,120"

    def test_wait_text(self):
        assert waiti(8).text() == "waiti 8"
        assert waitr(1).text() == "waitr $1"

    def test_cw_text_all_variants(self):
        assert cw_ii(3, 7).text() == "cw.i.i 3,7"
        assert cw_ir(3, 4).text() == "cw.i.r 3,$4"
        assert cw_ri(5, 7).text() == "cw.r.i $5,7"
        assert cw_rr(5, 6).text() == "cw.r.r $5,$6"

    def test_sync_text(self):
        assert sync(2).text() == "sync 2"
        assert sync(2, 10).text() == "sync 2,10"

    def test_memory_text(self):
        assert Instruction("lw", rd=1, rs1=2, imm=8).text() == "lw $1,8($2)"
        assert Instruction("sw", rs2=1, rs1=2, imm=-4).text() == "sw $1,-4($2)"

    def test_send_recv_text(self):
        assert send(3, 5).text() == "send 3,$5"
        assert recv(5, 0xFFE).text() == "recv $5,4094"
