"""HISQ assembler: syntax, labels, offsets, errors."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble


class TestBasicParsing:
    def test_empty_source(self):
        assert len(assemble("")) == 0

    def test_comments_ignored(self):
        program = assemble("# a comment\naddi $1,$0,1 // trailing\n")
        assert len(program) == 1

    def test_register_dollar_syntax(self):
        assert assemble("addi $2,$0,120")[0].rd == 2

    def test_register_x_syntax(self):
        assert assemble("addi x2,x0,120")[0].rd == 2

    def test_register_abi_names(self):
        instr = assemble("add t0, zero, sp")[0]
        assert (instr.rd, instr.rs1, instr.rs2) == (5, 0, 2)

    def test_hex_immediate(self):
        assert assemble("addi $1,$0,0x7F")[0].imm == 127

    def test_negative_immediate(self):
        assert assemble("addi $1,$1,-40")[0].imm == -40

    def test_memory_operand(self):
        instr = assemble("lw $1, 8($2)")[0]
        assert (instr.rd, instr.rs1, instr.imm) == (1, 2, 8)

    def test_store_operand(self):
        instr = assemble("sw $3, -4($2)")[0]
        assert (instr.rs2, instr.rs1, instr.imm) == (3, 2, -4)


class TestQuantumSyntax:
    def test_waiti(self):
        assert assemble("waiti 57")[0].imm == 57

    def test_waitr(self):
        assert assemble("waitr $1")[0].rs1 == 1

    def test_cw_all_variants(self):
        program = assemble("cw.i.i 21,2\ncw.i.r 3,$4\ncw.r.i $5,7\ncw.r.r $5,$6")
        assert [i.mnemonic for i in program] == ["cw.i.i", "cw.i.r",
                                                 "cw.r.i", "cw.r.r"]
        assert program[0].imm == 21 and program[0].imm2 == 2

    def test_sync_one_operand(self):
        instr = assemble("sync 2")[0]
        assert instr.imm == 2 and instr.imm2 == 0

    def test_sync_two_operands(self):
        instr = assemble("sync 0x100, 48")[0]
        assert instr.imm == 0x100 and instr.imm2 == 48

    def test_send_recv(self):
        program = assemble("send 3,$5\nrecv $5,4094\nsend.i 2,1")
        assert program[0].imm == 3
        assert program[1].imm == 4094
        assert program[2].imm2 == 1


class TestLabelsAndOffsets:
    def test_label_branch(self):
        program = assemble("loop:\naddi $1,$1,1\nbne $1,$2,loop")
        assert program[1].imm == -1

    def test_forward_label(self):
        program = assemble("beq $1,$0,done\naddi $1,$0,1\ndone:\nhalt")
        assert program[0].imm == 2

    def test_numeric_byte_offset(self):
        assert assemble("jal $0,-44")[0].imm == -11

    def test_misaligned_byte_offset_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jal $0,-42")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nnop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("beq $1,$0,nowhere")

    def test_label_sharing_line(self):
        program = assemble("loop: addi $1,$1,1\njal $0,loop")
        assert program[1].imm == -1

    def test_labels_recorded(self):
        program = assemble("start:\nnop")
        assert program.labels == {"start": 0}


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("bogus $1,$2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("addi $1,$0")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("addi $99,$0,1")

    def test_error_reports_line_number(self):
        try:
            assemble("nop\nbogus x")
        except AssemblyError as err:
            assert "line 2" in str(err)
        else:
            pytest.fail("expected AssemblyError")


class TestPaperPrograms:
    """The exact listings of Figure 12 must assemble."""

    CONTROL = """
    addi $2,$0,120
    addi $1,$0,0
    waiti 1
    cw.i.i 21,2
    addi $1,$1,40
    cw.i.i 20,2
    waitr $1
    sync 2
    waiti 8
    cw.i.i 7,1
    waiti 50
    bne $1,$2,-28
    jal $0,-44
    """

    READOUT = """
    waiti 2
    sync 1
    waiti 6
    waiti 57
    cw.i.i 5,1
    jal $0,-20
    """

    def test_control_board_program(self):
        program = assemble(self.CONTROL)
        assert len(program) == 13
        assert program.count("cw.i.i") == 3
        assert program[11].imm == -7  # bne back 28 bytes

    def test_readout_board_program(self):
        program = assemble(self.READOUT)
        assert len(program) == 6
        assert program[5].imm == -5  # jal back 20 bytes

    def test_listing_roundtrip(self):
        program = assemble(self.CONTROL)
        listing = program.listing()
        assert "sync 2" in listing
        assert "waitr $1" in listing
