"""Register file semantics."""

import pytest

from repro.errors import ExecutionError
from repro.isa.registers import (ABI_NAMES, MASK32, RegisterFile, to_signed,
                                 to_unsigned)


class TestRegisterFile:
    def test_initial_zero(self):
        regs = RegisterFile()
        assert all(regs.read(i) == 0 for i in range(32))

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(5, 1234)
        assert regs.read(5) == 1234

    def test_x0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write(0, 999)
        assert regs.read(0) == 0

    def test_wraps_to_32_bits(self):
        regs = RegisterFile()
        regs.write(1, 1 << 35)
        assert regs.read(1) == 0

    def test_negative_stored_as_twos_complement(self):
        regs = RegisterFile()
        regs.write(1, -1)
        assert regs.read(1) == MASK32
        assert regs.read_signed(1) == -1

    def test_out_of_range_read(self):
        with pytest.raises(ExecutionError):
            RegisterFile().read(32)

    def test_out_of_range_write(self):
        with pytest.raises(ExecutionError):
            RegisterFile().write(-1, 0)

    def test_reset(self):
        regs = RegisterFile()
        regs.write(3, 7)
        regs.reset()
        assert regs.read(3) == 0

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        snap[4] = 42
        assert regs.read(4) == 0


class TestConversions:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFFFFFF

    def test_abi_names_cover_all_registers(self):
        assert set(ABI_NAMES.values()) == set(range(32))
