"""Program container utilities."""

from repro.isa import Program, addi, assemble, cw_ii, halt, waiti


class TestProgram:
    def test_append_extend(self):
        program = Program(name="p")
        program.append(addi(1, 0, 5))
        program.extend([waiti(10), halt()])
        assert len(program) == 3

    def test_iteration_and_indexing(self):
        program = Program(instructions=[addi(1, 0, 5), halt()])
        assert program[0].mnemonic == "addi"
        assert [i.mnemonic for i in program] == ["addi", "halt"]

    def test_count(self):
        program = Program(instructions=[cw_ii(0, 1), cw_ii(0, 2), halt()])
        assert program.count("cw.i.i") == 2
        assert program.count("sync") == 0

    def test_static_timeline_cycles(self):
        program = Program(instructions=[waiti(10), waiti(20), halt()])
        assert program.static_timeline_cycles() == 30

    def test_listing_includes_labels(self):
        program = assemble("start:\naddi $1,$0,1\njal $0,start")
        listing = program.listing()
        assert "start:" in listing
        assert "addi $1,$0,1" in listing


class TestTextAssembleRoundtrip:
    def test_canonical_text_reassembles(self):
        source = """
        addi $2,$0,120
        waiti 1
        cw.i.i 21,2
        waitr $1
        sync 2
        sync 9,40
        send 3,$5
        send.i 2,1
        recv $5,4094
        lw $1,8($2)
        sw $3,-4($2)
        lui $4,4095
        halt
        """
        first = assemble(source)
        text = "\n".join(i.text() for i in first)
        second = assemble(text)
        assert first.instructions == second.instructions
