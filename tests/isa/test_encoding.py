"""Binary encode/decode roundtrips and field limits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, decode_program, encode, encode_program
from repro.isa.instructions import Instruction, cw_ii, sync, waiti


def roundtrip(instr):
    return decode(encode(instr))


class TestRoundtrips:
    def test_r_type(self):
        instr = Instruction("add", rd=1, rs1=2, rs2=3)
        assert roundtrip(instr) == instr

    def test_all_r_mnemonics(self):
        for m in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
                  "or", "and"):
            instr = Instruction(m, rd=5, rs1=6, rs2=7)
            assert roundtrip(instr) == instr

    def test_i_type_negative_imm(self):
        instr = Instruction("addi", rd=1, rs1=2, imm=-2048)
        assert roundtrip(instr) == instr

    def test_shifts(self):
        for m in ("slli", "srli", "srai"):
            instr = Instruction(m, rd=1, rs1=2, imm=31)
            assert roundtrip(instr) == instr

    def test_loads_stores(self):
        assert roundtrip(Instruction("lw", rd=1, rs1=2, imm=-4)) == \
            Instruction("lw", rd=1, rs1=2, imm=-4)
        assert roundtrip(Instruction("sw", rs1=2, rs2=3, imm=2047)) == \
            Instruction("sw", rs1=2, rs2=3, imm=2047)

    def test_branches(self):
        for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            instr = Instruction(m, rs1=1, rs2=2, imm=-7)
            assert roundtrip(instr) == instr

    def test_jal(self):
        instr = Instruction("jal", rd=1, imm=-11)
        assert roundtrip(instr) == instr

    def test_lui_auipc(self):
        assert roundtrip(Instruction("lui", rd=3, imm=0xFFFFF)).imm == 0xFFFFF
        assert roundtrip(Instruction("auipc", rd=3, imm=7)).mnemonic == "auipc"

    def test_waiti(self):
        assert roundtrip(waiti(57)) == waiti(57)
        assert roundtrip(waiti((1 << 20) - 1)).imm == (1 << 20) - 1

    def test_waitr(self):
        instr = Instruction("waitr", rs1=9)
        assert roundtrip(instr) == instr

    def test_cw_variants(self):
        assert roundtrip(cw_ii(21, 2)) == cw_ii(21, 2)
        assert roundtrip(Instruction("cw.i.r", imm=3, rs2=4)) == \
            Instruction("cw.i.r", imm=3, rs2=4)
        assert roundtrip(Instruction("cw.r.i", rs1=5, imm2=7)) == \
            Instruction("cw.r.i", rs1=5, imm2=7)
        assert roundtrip(Instruction("cw.r.r", rs1=5, rs2=6)) == \
            Instruction("cw.r.r", rs1=5, rs2=6)

    def test_sync(self):
        assert roundtrip(sync(2)) == sync(2)
        assert roundtrip(sync(1023, 4095)) == sync(1023, 4095)

    def test_send_recv_halt(self):
        assert roundtrip(Instruction("send", imm=3, rs1=5)) == \
            Instruction("send", imm=3, rs1=5)
        assert roundtrip(Instruction("send.i", imm=3, imm2=1)) == \
            Instruction("send.i", imm=3, imm2=1)
        assert roundtrip(Instruction("recv", rd=5, imm=0xFFE)) == \
            Instruction("recv", rd=5, imm=0xFFE)
        assert roundtrip(Instruction("halt")) == Instruction("halt")

    def test_nop_encodes_as_addi_zero(self):
        assert decode(encode(Instruction("nop"))).mnemonic == "nop"


class TestLimits:
    def test_addi_imm_too_large(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=0, imm=4096))

    def test_wait_too_long(self):
        with pytest.raises(EncodingError):
            encode(waiti(1 << 20))

    def test_port_too_large(self):
        with pytest.raises(EncodingError):
            encode(cw_ii(1024, 0))

    def test_codeword_too_large(self):
        with pytest.raises(EncodingError):
            encode(cw_ii(0, 4096))

    def test_sync_delta_too_large(self):
        with pytest.raises(EncodingError):
            encode(sync(1, 4096))

    def test_unknown_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(0x0000007F)


class TestProgramBlobs:
    def test_program_roundtrip(self):
        source = "addi $2,$0,120\nwaiti 1\ncw.i.i 21,2\nsync 1\nhalt"
        program = assemble(source)
        blob = encode_program(program)
        assert len(blob) == 4 * len(program)
        assert decode_program(blob) == program.instructions

    def test_misaligned_blob_rejected(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00\x01\x02")


@given(rd=st.integers(0, 31), rs1=st.integers(0, 31),
       imm=st.integers(-2048, 2047))
def test_property_addi_roundtrip(rd, rs1, imm):
    instr = Instruction("addi", rd=rd, rs1=rs1, imm=imm)
    decoded = roundtrip(instr)
    if (rd, rs1, imm) == (0, 0, 0):
        assert decoded.mnemonic == "nop"  # canonical nop encoding
    else:
        assert decoded == instr


@given(port=st.integers(0, 1023), codeword=st.integers(0, 4095))
def test_property_cw_roundtrip(port, codeword):
    assert roundtrip(cw_ii(port, codeword)) == cw_ii(port, codeword)


@given(tgt=st.integers(0, 1023), delta=st.integers(0, 4095))
def test_property_sync_roundtrip(tgt, delta):
    assert roundtrip(sync(tgt, delta)) == sync(tgt, delta)


@given(offset=st.integers(-1024, 1023))
def test_property_branch_roundtrip(offset):
    instr = Instruction("beq", rs1=1, rs2=2, imm=offset)
    assert roundtrip(instr) == instr


@given(cycles=st.integers(0, (1 << 20) - 1))
def test_property_wait_roundtrip(cycles):
    assert roundtrip(waiti(cycles)).imm == cycles
