"""Differential suite for the replay tiers and the lane engine.

PR 5's fast interpreter got one reference/fast pair; this suite covers
the three-way tier split (``legacy`` per-instruction interpreter,
``block`` eager per-item replay, ``vector`` lazily-drained
:class:`~repro.core.queues.ReplayBatch`) plus lane-parallel multishot —
every registered scheme, a sample of registry workloads, and randomized
ISA programs with depth-2 queues.  All modes must agree bit-for-bit on
every observable: makespans, per-core counters, stall accounting, TELF
traces, queue-driven pipeline stalls, per-shot stats.
"""

import random

import pytest

from repro.compiler import schemes as scheme_registry
from repro.compiler.driver import run_circuit
from repro.core.config import CoreConfig
from repro.core.node import HISQCore
from repro.harness import registry
from repro.isa import decoded
from repro.isa.assembler import assemble
from repro.sim import lanes
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog
from repro.testing import random_clifford_circuit

TIERS = ("legacy", "block", "vector")


def _fingerprint(result):
    """Everything observable about one timing run."""
    system = result.system
    return {
        "makespan": result.makespan_cycles,
        "per_core": {name: dict(counters) for name, counters in
                     result.stats.per_core.items()},
        "sync_stall": result.stats.sync_stall_cycles,
        "violations": result.stats.timing_violations,
        "telf": list(system.telf._raw),
        "skew_events": system.device.gate_skew_events,
        "unmapped": system.unmapped_codewords,
        "shot_stats": result.shot_stats,
    }


def _set_tier(monkeypatch, tier):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    monkeypatch.setenv("REPRO_REPLAY_TIER", tier)


def _run_tier(circuit, scheme, monkeypatch, tier, **kwargs):
    _set_tier(monkeypatch, tier)
    result = run_circuit(circuit, scheme=scheme, backend=None,
                         record_gate_log=False, **kwargs)
    return _fingerprint(result)


class TestWorkloadTierDifferential:
    """Every registered scheme x registry workloads x all three tiers."""

    WORKLOADS = ("bv_n400", "logical_t_n432", "qft_n300", "repetition_d25")

    @pytest.mark.parametrize("scheme", scheme_registry.scheme_names())
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_all_tiers_agree(self, scheme, workload, monkeypatch):
        spec = registry.get_workload(workload).spec(0.04, 0.25)
        circuit = spec.circuit()
        prints = {tier: _run_tier(circuit, scheme, monkeypatch, tier,
                                  mesh_kind=spec.mesh_kind)
                  for tier in TIERS}
        assert prints["block"] == prints["legacy"], (scheme, workload)
        assert prints["vector"] == prints["legacy"], (scheme, workload)

    def test_vector_tier_actually_batches(self, monkeypatch):
        """The vector tier must enqueue batches, not quietly degrade to
        the block loop (the CI perf-smoke assertion, in-miniature)."""
        spec = registry.get_workload("bv_n400").spec(0.04, 0.25)
        circuit = spec.circuit()
        _set_tier(monkeypatch, "vector")
        decoded.clear_decode_caches()
        decoded.reset_replay_totals()
        run_circuit(circuit, scheme="bisp", backend=None,
                    record_gate_log=False, mesh_kind=spec.mesh_kind)
        totals = decoded.replay_totals()
        assert totals["vector"] > 0
        assert totals["vector_items"] >= 4 * totals["vector"]

    def test_per_program_counters(self, monkeypatch):
        _set_tier(monkeypatch, "vector")
        decoded.clear_decode_caches()
        source = "\n".join(["waiti 3\ncw.i.i 0,{}".format(i + 1)
                            for i in range(8)]) + "\nhalt"
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog())
        core.load(assemble(source))
        core.start()
        engine.run(until=100_000)
        assert core._decoded.vector_replays > 0
        assert core._decoded.vector_items > 0
        assert core.counters()["codewords"] == 8


class TestRandomCircuitTierDifferential:
    def test_random_dynamic_circuit_all_schemes(self, monkeypatch):
        circuit = random_clifford_circuit(8, 60, seed=20260808,
                                          feedback=True)
        for scheme in scheme_registry.scheme_names():
            prints = [_run_tier(circuit, scheme, monkeypatch, tier)
                      for tier in TIERS]
            assert prints[0] == prints[1] == prints[2], scheme


def _random_program(seed: int) -> str:
    """Randomized single-core HISQ program (cf. test_fastforward), biased
    toward long emission runs so vector batches actually form."""
    rng = random.Random(seed)
    lines = []
    lines.append("addi $1,$0,{}".format(rng.randint(1, 5)))
    for _ in range(rng.randint(8, 50)):
        roll = rng.random()
        if roll < 0.3:
            lines.append("waiti {}".format(rng.randint(1, 50)))
        elif roll < 0.75:
            lines.append("cw.i.i {},{}".format(rng.randint(0, 3),
                                               rng.randint(1, 200)))
        elif roll < 0.82:
            lines.append("cw.i.i {},{}".format(rng.randint(4, 7),
                                               rng.randint(1, 200)))
        elif roll < 0.88:
            lines.append("addi $2,$2,{}".format(rng.randint(-4, 9)))
        else:
            lines.append("nop")
    body_len = min(rng.randint(2, 6), len(lines) - 1)
    lines.append("addi $1,$1,-1")
    lines.append("bne $1,$0,-{}".format(4 * body_len))
    lines.append("halt")
    return "\n".join(lines)


def _run_bare(source: str, tier: str, monkeypatch, depth: int = 1024):
    _set_tier(monkeypatch, tier)
    engine = Engine()
    telf = TelfLog()
    core = HISQCore("c0", 0, engine, telf,
                    config=CoreConfig(event_queue_depth=depth))
    core.load(assemble(source))
    core.start()
    engine.run(until=2_000_000)
    return {
        "counters": core.counters(),
        "regs": core.regs.snapshot(),
        "memory": dict(core.memory),
        "pc": core.pc,
        "position": core.position,
        "queue_len": len(core._queue),
        "telf": list(telf._raw),
        "events": engine.events_processed,
        "now": engine.now,
    }


class TestRandomProgramTierProperty:
    """Property: all three tiers are instruction-exact on random ISA."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_programs(self, seed, monkeypatch):
        source = _random_program(seed)
        prints = [_run_bare(source, tier, monkeypatch) for tier in TIERS]
        assert prints[0] == prints[1] == prints[2]

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_tiny_queue(self, seed, monkeypatch):
        """Depth-2 queues force replay admission to split batches and the
        pipeline to stall; accounting must agree across tiers."""
        source = _random_program(2000 + seed)
        prints = [_run_bare(source, tier, monkeypatch, depth=2)
                  for tier in TIERS]
        assert prints[0] == prints[1] == prints[2]

    def test_burst_emissions_tiny_queue_stalls(self, monkeypatch):
        lines = []
        for i in range(40):
            lines.append("cw.i.i 0,{}".format(i + 1))
            if i % 2 == 0:
                lines.append("waiti 100")
        lines.append("halt")
        source = "\n".join(lines)
        prints = [_run_bare(source, tier, monkeypatch, depth=2)
                  for tier in TIERS]
        assert prints[0] == prints[1] == prints[2]
        assert prints[0]["counters"]["pipeline_stall"] > 0

    def test_deep_queue_forms_batches(self, monkeypatch):
        """Sanity: with a roomy queue the random programs really do take
        the batch path (otherwise the tiny-queue tests prove nothing)."""
        decoded.reset_replay_totals()
        _run_bare(_random_program(3), "vector", monkeypatch)
        assert decoded.replay_totals()["vector"] > 0


class TestLaneDifferential:
    """Lane fast-forward vs per-lane replay, static and dynamic."""

    @pytest.mark.parametrize("workload", ("qft_n300", "bv_n400"))
    @pytest.mark.parametrize("subst", (0.0, 0.25))
    def test_lanes_match_replay(self, workload, subst, monkeypatch):
        spec = registry.get_workload(workload).spec(0.04, subst)
        circuit = spec.circuit()
        for scheme in scheme_registry.scheme_names():
            monkeypatch.delenv("REPRO_NO_LANES", raising=False)
            on = run_circuit(circuit, scheme=scheme, backend=None,
                             record_gate_log=False, shots=4,
                             mesh_kind=spec.mesh_kind)
            monkeypatch.setenv("REPRO_NO_LANES", "1")
            off = run_circuit(circuit, scheme=scheme, backend=None,
                              record_gate_log=False, shots=4,
                              mesh_kind=spec.mesh_kind)
            assert on.shot_stats == off.shot_stats, (scheme, workload)
            assert off.lane_mode == "replay"
            expected = ("fastforward"
                        if lanes.static_timing(on.compilation) else "replay")
            assert on.lane_mode == expected, (scheme, workload)

    def test_static_detection(self, monkeypatch):
        static_spec = registry.get_workload("qft_n300").spec(0.04, 0.0)
        dynamic_spec = registry.get_workload("qft_n300").spec(0.04, 0.25)
        static = run_circuit(static_spec.circuit(), scheme="bisp",
                             backend=None, record_gate_log=False)
        dynamic = run_circuit(dynamic_spec.circuit(), scheme="bisp",
                              backend=None, record_gate_log=False)
        assert lanes.static_timing(static.compilation)
        assert not lanes.static_timing(dynamic.compilation)

    def test_fastforward_engages_on_static_set(self, monkeypatch):
        """qft at zero substitution compiles recv-free under bisp — the
        lane engine must actually fan it out, not fall back to replay."""
        monkeypatch.delenv("REPRO_NO_LANES", raising=False)
        lanes.reset_lane_totals()
        spec = registry.get_workload("qft_n300").spec(0.04, 0.0)
        result = run_circuit(spec.circuit(), scheme="bisp", backend=None,
                             record_gate_log=False, shots=5,
                             mesh_kind=spec.mesh_kind)
        assert result.lane_mode == "fastforward"
        assert lanes.lane_totals()["fastforward"] == 4
        assert len(result.shot_stats) == 5
        seeds = {s["device_seed"] for s in result.shot_stats}
        assert len(seeds) == 5

    def test_no_lanes_env_forces_replay(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LANES", "1")
        lanes.reset_lane_totals()
        spec = registry.get_workload("qft_n300").spec(0.04, 0.0)
        result = run_circuit(spec.circuit(), scheme="bisp", backend=None,
                             record_gate_log=False, shots=3,
                             mesh_kind=spec.mesh_kind)
        assert result.lane_mode == "replay"
        assert lanes.lane_totals() == {"fastforward": 0, "replayed": 2}
