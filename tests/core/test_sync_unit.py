"""SyncU flag latching and Tm buffering."""

import pytest

from repro.core.sync_unit import SyncUnit
from repro.errors import SynchronizationError


class TestNearbyFlags:
    def test_signal_latched_then_consumed(self):
        unit = SyncUnit("c0")
        unit.receive_signal(3)
        assert unit.try_consume_signal(3)
        assert not unit.try_consume_signal(3)

    def test_signals_count_like_stacked_boxes(self):
        unit = SyncUnit("c0")
        unit.receive_signal(3)
        unit.receive_signal(3)
        assert unit.try_consume_signal(3)
        assert unit.try_consume_signal(3)
        assert not unit.try_consume_signal(3)

    def test_flags_per_neighbor(self):
        unit = SyncUnit("c0")
        unit.receive_signal(1)
        assert not unit.try_consume_signal(2)
        assert unit.try_consume_signal(1)

    def test_waiter_fires_immediately_if_flag_present(self):
        unit = SyncUnit("c0")
        unit.receive_signal(1)
        fired = []
        unit.wait_for_signal(1, lambda: fired.append(True))
        assert fired == [True]

    def test_waiter_fires_on_arrival(self):
        unit = SyncUnit("c0")
        fired = []
        unit.wait_for_signal(1, lambda: fired.append(True))
        assert fired == []
        unit.receive_signal(1)
        assert fired == [True]

    def test_waiter_ignores_other_sources(self):
        unit = SyncUnit("c0")
        fired = []
        unit.wait_for_signal(1, lambda: fired.append(True))
        unit.receive_signal(2)
        assert fired == []
        assert unit.pending_flags() == {2: 1}

    def test_double_waiter_rejected(self):
        unit = SyncUnit("c0")
        unit.wait_for_signal(1, lambda: None)
        with pytest.raises(SynchronizationError):
            unit.wait_for_signal(1, lambda: None)


class TestRegionTimePoint:
    def test_tm_buffered(self):
        unit = SyncUnit("c0")
        unit.receive_time_point(100)
        got = []
        unit.wait_for_time_point(got.append)
        assert got == [100]

    def test_tm_waiter_fires_on_arrival(self):
        unit = SyncUnit("c0")
        got = []
        unit.wait_for_time_point(got.append)
        unit.receive_time_point(55)
        assert got == [55]

    def test_double_tm_waiter_rejected(self):
        unit = SyncUnit("c0")
        unit.wait_for_time_point(lambda tm: None)
        with pytest.raises(SynchronizationError):
            unit.wait_for_time_point(lambda tm: None)
