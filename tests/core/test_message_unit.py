"""MsgU inboxes, blocking receive, wildcard source."""

import pytest

from repro.core.config import ANY_SOURCE
from repro.core.message_unit import MessageUnit
from repro.errors import ExecutionError


class TestMessageUnit:
    def test_deliver_then_receive(self):
        unit = MessageUnit("c0")
        unit.deliver(3, 42)
        got = []
        unit.receive(3, lambda s, v: got.append((s, v)))
        assert got == [(3, 42)]

    def test_receive_blocks_until_delivery(self):
        unit = MessageUnit("c0")
        got = []
        unit.receive(3, lambda s, v: got.append((s, v)))
        assert got == []
        unit.deliver(3, 7)
        assert got == [(3, 7)]

    def test_fifo_per_source(self):
        unit = MessageUnit("c0")
        unit.deliver(3, 1)
        unit.deliver(3, 2)
        got = []
        unit.receive(3, lambda s, v: got.append(v))
        unit.receive(3, lambda s, v: got.append(v))
        assert got == [1, 2]

    def test_source_filtering(self):
        unit = MessageUnit("c0")
        unit.deliver(9, 99)
        got = []
        unit.receive(3, lambda s, v: got.append(v))
        assert got == []  # message from 9 must not satisfy recv from 3
        unit.deliver(3, 1)
        assert got == [1]
        assert unit.pending(9) == 1

    def test_any_source_wildcard(self):
        unit = MessageUnit("c0")
        unit.deliver(7, 70)
        got = []
        unit.receive(ANY_SOURCE, lambda s, v: got.append((s, v)))
        assert got == [(7, 70)]

    def test_any_source_arrival_order(self):
        unit = MessageUnit("c0")
        unit.deliver(1, 10)
        unit.deliver(2, 20)
        got = []
        unit.receive(ANY_SOURCE, lambda s, v: got.append(s))
        unit.receive(ANY_SOURCE, lambda s, v: got.append(s))
        assert got == [1, 2]

    def test_blocked_wildcard_takes_any(self):
        unit = MessageUnit("c0")
        got = []
        unit.receive(ANY_SOURCE, lambda s, v: got.append(s))
        unit.deliver(5, 0)
        assert got == [5]

    def test_double_receiver_rejected(self):
        unit = MessageUnit("c0")
        unit.receive(1, lambda s, v: None)
        with pytest.raises(ExecutionError):
            unit.receive(2, lambda s, v: None)

    def test_pending_counts(self):
        unit = MessageUnit("c0")
        unit.deliver(1, 0)
        unit.deliver(1, 0)
        unit.deliver(2, 0)
        assert unit.pending() == 3
        assert unit.pending(1) == 2


class TestWildcardInterleaving:
    """ANY_SOURCE and concrete receives interleaved over one unit: the
    lazy arrival-order queue must skip entries consumed by concrete
    receives without ever reordering or double-delivering (regression
    for the O(n) ``_order.remove`` replacement)."""

    def test_concrete_then_wildcard_skips_consumed(self):
        unit = MessageUnit("c0")
        unit.deliver(1, 10)
        unit.deliver(2, 20)
        unit.deliver(1, 11)
        got = []
        unit.receive(1, lambda s, v: got.append((s, v)))   # eats (1, 10)
        unit.receive(ANY_SOURCE, lambda s, v: got.append((s, v)))
        unit.receive(ANY_SOURCE, lambda s, v: got.append((s, v)))
        assert got == [(1, 10), (2, 20), (1, 11)]
        assert unit.pending() == 0

    def test_wildcard_sees_arrival_order_across_gaps(self):
        unit = MessageUnit("c0")
        for source, value in [(3, 1), (1, 2), (3, 3), (2, 4), (1, 5)]:
            unit.deliver(source, value)
        got = []
        unit.receive(3, lambda s, v: got.append(v))        # eats (3, 1)
        unit.receive(3, lambda s, v: got.append(v))        # eats (3, 3)
        unit.receive(ANY_SOURCE, lambda s, v: got.append(v))
        unit.receive(ANY_SOURCE, lambda s, v: got.append(v))
        unit.receive(ANY_SOURCE, lambda s, v: got.append(v))
        assert got == [1, 3, 2, 4, 5]

    def test_interleaving_matches_oracle(self):
        """Differential check against a naive list-based model across a
        deterministic mixed schedule."""
        import random

        rng = random.Random(1234)
        unit = MessageUnit("c0")
        oracle = []  # (source, value) in arrival order
        got, expected = [], []
        next_value = 0
        for _ in range(400):
            action = rng.randrange(3)
            if action == 0:
                source = rng.randrange(4)
                unit.deliver(source, next_value)
                oracle.append((source, next_value))
                next_value += 1
            elif action == 1 and oracle:
                source = rng.choice(oracle)[0]
                match = next(i for i, (s, _) in enumerate(oracle)
                             if s == source)
                expected.append(oracle.pop(match))
                unit.receive(source, lambda s, v: got.append((s, v)))
            elif action == 2 and oracle:
                expected.append(oracle.pop(0))
                unit.receive(ANY_SOURCE, lambda s, v: got.append((s, v)))
        assert got == expected
        assert unit.pending() == len(oracle)
