"""Item queue capacity and wake-up semantics."""

from repro.core.queues import EmitCodeword, ItemQueue, Resync


class TestItemQueue:
    def test_fifo_order(self):
        queue = ItemQueue(4)
        for i in range(3):
            queue.push(EmitCodeword(i, 0, i))
        assert [queue.pop().codeword for _ in range(3)] == [0, 1, 2]

    def test_full_flag(self):
        queue = ItemQueue(2)
        queue.push(EmitCodeword(0, 0, 0))
        assert not queue.full
        queue.push(EmitCodeword(1, 0, 0))
        assert queue.full

    def test_peek_does_not_remove(self):
        queue = ItemQueue(2)
        queue.push(EmitCodeword(0, 3, 4))
        assert queue.peek().port == 3
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert ItemQueue(1).peek() is None

    def test_space_waiter_called_on_pop(self):
        queue = ItemQueue(1)
        queue.push(EmitCodeword(0, 0, 0))
        called = []
        queue.wait_for_space(lambda: called.append(True))
        queue.pop()
        assert called == [True]

    def test_space_waiter_called_once(self):
        queue = ItemQueue(2)
        queue.push(EmitCodeword(0, 0, 0))
        queue.push(EmitCodeword(1, 0, 0))
        called = []
        queue.wait_for_space(lambda: called.append(True))
        queue.pop()
        queue.pop()
        assert called == [True]

    def test_resync_defaults_not_exact(self):
        assert Resync(0, 10).exact is False
