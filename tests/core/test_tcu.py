"""Timing control unit: precise emission, queue stalls, violations."""

import pytest

from repro.core.node import HISQCore
from repro.errors import TimingViolation
from repro.isa.assembler import assemble
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog
from repro.testing import make_bare_core as make_core


class TestEmissionTiming:
    def test_emission_at_exact_position(self):
        engine, core = make_core("waiti 100\ncw.i.i 3,7\nhalt")
        engine.run()
        records = core.telf.emissions("c0")
        assert [(r.time, r.port, r.value) for r in records] == [(100, 3, 7)]

    def test_back_to_back_same_position(self):
        engine, core = make_core("waiti 10\ncw.i.i 0,1\ncw.i.i 1,2\nhalt")
        engine.run()
        times = [r.time for r in core.telf.emissions("c0")]
        assert times == [10, 10]

    def test_wait_separates_emissions(self):
        engine, core = make_core(
            "cw.i.i 0,1\nwaiti 5\ncw.i.i 0,2\nwaiti 3\ncw.i.i 0,3\nhalt")
        engine.run()
        times = [r.time for r in core.telf.emissions("c0")]
        assert times == [0, 5, 8]

    def test_cw_register_variants_resolved_at_pipeline_time(self):
        engine, core = make_core(
            "addi $1,$0,9\naddi $2,$0,4\nwaiti 20\ncw.r.r $2,$1\nhalt")
        engine.run()
        record = core.telf.emissions("c0")[0]
        assert (record.port, record.value) == (4, 9)

    def test_emission_counter(self):
        engine, core = make_core("cw.i.i 0,1\ncw.i.i 0,2\nhalt")
        engine.run()
        assert core.codewords_emitted == 2

    def test_drained_after_halt(self):
        engine, core = make_core("waiti 50\ncw.i.i 0,1\nhalt")
        engine.run()
        assert core.drained


class TestQueueCapacity:
    def test_pipeline_stalls_on_full_queue(self):
        # Queue of 2: the pipeline must stall until the TCU drains.
        source = "\n".join("waiti 10\ncw.i.i 0,{}".format(i)
                           for i in range(6)) + "\nhalt"
        engine, core = make_core(source, event_queue_depth=2)
        engine.run()
        times = [r.time for r in core.telf.emissions("c0")]
        assert times == [10, 20, 30, 40, 50, 60]  # timing preserved
        assert core.drained

    def test_deep_queue_no_stall(self):
        source = "\n".join("waiti 10\ncw.i.i 0,{}".format(i)
                           for i in range(6)) + "\nhalt"
        engine, core = make_core(source, event_queue_depth=1024)
        engine.run()
        assert core.pipeline_stall_cycles == 0


class TestViolations:
    def test_late_event_counted(self):
        # 300 classical instructions before a cw at position 0: the
        # pipeline (1 cycle/instr) passes position 0 long before enqueue.
        source = "\n".join(["addi $1,$1,1"] * 300) + "\ncw.i.i 0,1\nhalt"
        engine, core = make_core(source)
        engine.run()
        assert core.timing_violations >= 1

    def test_strict_mode_raises(self):
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog(), strict_timing=True)
        source = "\n".join(["addi $1,$1,1"] * 300) + "\ncw.i.i 0,1\nhalt"
        core.load(assemble(source))
        core.start()
        with pytest.raises(TimingViolation):
            engine.run()

    def test_on_time_program_has_no_violations(self):
        engine, core = make_core("waiti 100\ncw.i.i 0,1\nhalt")
        engine.run()
        assert core.timing_violations == 0
