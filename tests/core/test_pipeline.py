"""Classical pipeline: RV32I execution semantics on a bare core."""

import pytest

from repro.core.node import HISQCore
from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog
from repro.testing import run_bare_program as run_program


class TestArithmetic:
    def test_addi(self):
        core = run_program("addi $1,$0,120\nhalt")
        assert core.regs.read(1) == 120

    def test_add_sub(self):
        core = run_program("addi $1,$0,7\naddi $2,$0,3\n"
                           "add $3,$1,$2\nsub $4,$1,$2\nhalt")
        assert core.regs.read(3) == 10
        assert core.regs.read(4) == 4

    def test_sub_underflow_wraps(self):
        core = run_program("addi $1,$0,1\nsub $2,$0,$1\nhalt")
        assert core.regs.read(2) == 0xFFFFFFFF
        assert core.regs.read_signed(2) == -1

    def test_logic_ops(self):
        core = run_program("addi $1,$0,0xF0\naddi $2,$0,0x0F\n"
                           "and $3,$1,$2\nor $4,$1,$2\nxor $5,$1,$2\nhalt")
        assert core.regs.read(3) == 0
        assert core.regs.read(4) == 0xFF
        assert core.regs.read(5) == 0xFF

    def test_immediates_logic(self):
        core = run_program("addi $1,$0,0xFF\nandi $2,$1,0x0F\n"
                           "ori $3,$1,0x100\nxori $4,$1,0xFF\nhalt")
        assert core.regs.read(2) == 0x0F
        assert core.regs.read(3) == 0x1FF
        assert core.regs.read(4) == 0

    def test_slt_signed_unsigned(self):
        core = run_program("addi $1,$0,-1\naddi $2,$0,1\n"
                           "slt $3,$1,$2\nsltu $4,$1,$2\nhalt")
        assert core.regs.read(3) == 1  # -1 < 1 signed
        assert core.regs.read(4) == 0  # 0xFFFFFFFF > 1 unsigned

    def test_shifts(self):
        core = run_program("addi $1,$0,-8\nslli $2,$1,1\n"
                           "srli $3,$1,1\nsrai $4,$1,1\nhalt")
        assert core.regs.read_signed(2) == -16
        assert core.regs.read(3) == 0x7FFFFFFC
        assert core.regs.read_signed(4) == -4

    def test_lui(self):
        core = run_program("lui $1,0x12345\nhalt")
        assert core.regs.read(1) == 0x12345000


class TestControlFlow:
    def test_beq_taken(self):
        core = run_program("beq $0,$0,skip\naddi $1,$0,1\nskip:\nhalt")
        assert core.regs.read(1) == 0

    def test_bne_loop_counts(self):
        core = run_program("""
        addi $2,$0,5
        loop:
        addi $1,$1,1
        bne $1,$2,loop
        halt""")
        assert core.regs.read(1) == 5

    def test_blt_bge(self):
        core = run_program("addi $1,$0,-1\nblt $1,$0,neg\naddi $3,$0,1\n"
                           "neg:\nbge $0,$1,done\naddi $4,$0,1\ndone:\nhalt")
        assert core.regs.read(3) == 0
        assert core.regs.read(4) == 0

    def test_jal_links_return_address(self):
        core = run_program("jal $1,target\nnop\ntarget:\nhalt")
        assert core.regs.read(1) == 1  # instruction index after the jal

    def test_jalr_jumps_to_register(self):
        core = run_program("addi $1,$0,3\njalr $2,$1,0\naddi $3,$0,9\nhalt")
        assert core.regs.read(3) == 0
        assert core.regs.read(2) == 2

    def test_running_off_the_end_halts(self):
        core = run_program("addi $1,$0,1")
        assert core.halted


class TestMemory:
    def test_store_load(self):
        core = run_program("addi $1,$0,77\nsw $1,16($0)\nlw $2,16($0)\nhalt")
        assert core.regs.read(2) == 77

    def test_load_uninitialized_is_zero(self):
        core = run_program("lw $1,4($0)\nhalt")
        assert core.regs.read(1) == 0

    def test_misaligned_access_rejected(self):
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog())
        core.load(assemble("addi $1,$0,2\nlw $2,1($1)\nhalt"))
        core.start()
        with pytest.raises(ExecutionError):
            engine.run()


class TestPipelineTiming:
    def test_instruction_cost_one_cycle(self):
        core = run_program("addi $1,$0,1\naddi $2,$0,2\nhalt")
        assert core.instructions_executed == 3

    def test_halt_stops_fetch(self):
        core = run_program("halt\naddi $1,$0,9")
        assert core.regs.read(1) == 0

    def test_double_start_rejected(self):
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog())
        core.load(assemble("halt"))
        core.start()
        with pytest.raises(ExecutionError):
            core.start()

    def test_wait_advances_position_not_pipeline(self):
        core = run_program("waiti 1000\nhalt")
        assert core.position == 1000

    def test_waitr_uses_register_value(self):
        core = run_program("addi $1,$0,40\nwaitr $1\nwaitr $1\nhalt")
        assert core.position == 80
