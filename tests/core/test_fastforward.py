"""Fast-forward vs stepwise differential suite.

The pre-decoded fast path (basic-block replay in
:meth:`repro.core.node.HISQCore._pipeline_run_fast`) must be *exactly*
equivalent to the original per-instruction interpreter: same makespans,
same per-core counters, same TELF traces, same stall accounting — across
every registered synchronization scheme, a sample of registry workloads,
and randomized ISA programs.  ``REPRO_NO_FASTPATH=1`` selects the legacy
interpreter, which is the reference behavior here.
"""

import random

import pytest

from repro.compiler import schemes as scheme_registry
from repro.compiler.driver import run_circuit
from repro.core.config import CoreConfig
from repro.core.node import HISQCore, fastpath_enabled
from repro.harness import registry
from repro.isa.assembler import assemble
from repro.isa.decoded import decode_program
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog
from repro.testing import random_clifford_circuit


def _fingerprint(result):
    """Everything observable about one timing run."""
    system = result.system
    return {
        "makespan": result.makespan_cycles,
        "per_core": {name: dict(counters) for name, counters in
                     result.stats.per_core.items()},
        "sync_stall": result.stats.sync_stall_cycles,
        "violations": result.stats.timing_violations,
        "telf": list(system.telf._raw),
        "skew_events": system.device.gate_skew_events,
        "unmapped": system.unmapped_codewords,
    }


def _run(circuit, scheme, monkeypatch, legacy, **kwargs):
    if legacy:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    result = run_circuit(circuit, scheme=scheme, backend=None,
                         record_gate_log=False, **kwargs)
    return _fingerprint(result)


class TestWorkloadDifferential:
    """Every registered scheme x a sample of registry workloads."""

    WORKLOADS = ("bv_n400", "logical_t_n432", "qft_n300", "repetition_d25")

    @pytest.mark.parametrize("scheme", scheme_registry.scheme_names())
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_fastforward_matches_stepwise(self, scheme, workload,
                                          monkeypatch):
        spec = registry.get_workload(workload).spec(0.04, 0.25)
        circuit = spec.circuit()
        fast = _run(circuit, scheme, monkeypatch, legacy=False,
                    mesh_kind=spec.mesh_kind)
        slow = _run(circuit, scheme, monkeypatch, legacy=True,
                    mesh_kind=spec.mesh_kind)
        assert fast == slow

    def test_random_dynamic_circuit_all_schemes(self, monkeypatch):
        circuit = random_clifford_circuit(8, 60, seed=20260730,
                                          feedback=True)
        for scheme in scheme_registry.scheme_names():
            fast = _run(circuit, scheme, monkeypatch, legacy=False)
            slow = _run(circuit, scheme, monkeypatch, legacy=True)
            assert fast == slow, scheme


def _random_program(seed: int) -> str:
    """Randomized single-core HISQ program exercising the decoded paths.

    Mixes timeline ops (waits, codeword emissions), ALU work, memory
    spills and bounded branch loops — everything the fast interpreter
    dispatches except the fabric-dependent sync/send/recv ops (covered by
    the workload differential above).
    """
    rng = random.Random(seed)
    lines = []
    # A bounded countdown loop: $1 iterations of a small body.
    lines.append("addi $1,$0,{}".format(rng.randint(1, 5)))
    for _ in range(rng.randint(5, 40)):
        roll = rng.random()
        if roll < 0.35:
            lines.append("waiti {}".format(rng.randint(1, 50)))
        elif roll < 0.7:
            lines.append("cw.i.i {},{}".format(rng.randint(0, 3),
                                               rng.randint(1, 200)))
        elif roll < 0.78:
            lines.append("addi $2,$2,{}".format(rng.randint(-4, 9)))
        elif roll < 0.84:
            lines.append("sw $2,{}($0)".format(4 * rng.randint(0, 7)))
            lines.append("lw $3,{}($0)".format(4 * rng.randint(0, 7)))
        elif roll < 0.9:
            lines.append("slli $4,$2,2")
            lines.append("xor $5,$4,$2")
        else:
            lines.append("nop")
    # Loop tail: decrement and branch back a few instructions (the
    # assembler takes byte offsets, 4 per instruction).
    body_len = min(rng.randint(2, 6), len(lines) - 1)
    lines.append("addi $1,$1,-1")
    lines.append("bne $1,$0,-{}".format(4 * body_len))
    lines.append("halt")
    return "\n".join(lines)


def _run_bare(source: str, legacy: bool, monkeypatch, depth: int = 1024):
    if legacy:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    engine = Engine()
    telf = TelfLog()
    core = HISQCore("c0", 0, engine, telf,
                    config=CoreConfig(event_queue_depth=depth))
    core.load(assemble(source))
    core.start()
    engine.run(until=2_000_000)
    return {
        "counters": core.counters(),
        "regs": core.regs.snapshot(),
        "memory": dict(core.memory),
        "pc": core.pc,
        "position": core.position,
        "telf": list(telf._raw),
        "events": engine.events_processed,
        "now": engine.now,
    }


class TestRandomProgramProperty:
    """Property: decoded execution == legacy execution, instruction-exact."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_programs(self, seed, monkeypatch):
        source = _random_program(seed)
        fast = _run_bare(source, legacy=False, monkeypatch=monkeypatch)
        slow = _run_bare(source, legacy=True, monkeypatch=monkeypatch)
        assert fast == slow

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_tiny_queue(self, seed, monkeypatch):
        """Queue-full stalls must account identically in both modes."""
        source = _random_program(1000 + seed)
        fast = _run_bare(source, legacy=False, monkeypatch=monkeypatch,
                         depth=2)
        slow = _run_bare(source, legacy=True, monkeypatch=monkeypatch,
                         depth=2)
        assert fast == slow

    def test_burst_emissions_tiny_queue(self, monkeypatch):
        """Back-to-back codewords through a depth-2 queue stall the
        pipeline; the replay admission logic must fall back exactly."""
        lines = []
        for i in range(40):
            lines.append("cw.i.i 0,{}".format(i + 1))
            if i % 2 == 0:
                lines.append("waiti 100")
        lines.append("halt")
        source = "\n".join(lines)
        fast = _run_bare(source, legacy=False, monkeypatch=monkeypatch,
                         depth=2)
        slow = _run_bare(source, legacy=True, monkeypatch=monkeypatch,
                         depth=2)
        assert fast == slow
        assert fast["counters"]["pipeline_stall"] > 0


class TestFastpathToggle:
    def test_env_disables_decode(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert not fastpath_enabled()
        core = HISQCore("c0", 0, Engine(), TelfLog())
        core.load(assemble("halt"))
        assert core._decoded is None
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert fastpath_enabled()
        core.load(assemble("halt"))
        assert core._decoded is not None

    def test_decode_cache_shared_across_loads(self):
        program = assemble("waiti 5\ncw.i.i 0,1\nwaiti 4\ncw.i.i 0,2\nhalt")
        first = decode_program(program)
        assert decode_program(program) is first

    def test_start_revalidates_after_append(self):
        """Programs edited after load() are re-decoded at start()."""
        program = assemble("waiti 5\nhalt")
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog())
        core.load(program)
        if core._decoded is None:
            pytest.skip("fast path disabled in this environment")
        program.instructions.pop()  # drop halt
        program.extend(assemble("cw.i.i 0,7\nhalt").instructions)
        core.start()
        engine.run(until=10_000)
        assert core.counters()["codewords"] == 1

    def test_start_revalidates_same_length_swap(self):
        """Same-length in-place element replacement is caught too."""
        program = assemble("waiti 5\ncw.i.i 0,1\nwaiti 9\ncw.i.i 0,2\nhalt")
        engine = Engine()
        core = HISQCore("c0", 0, engine, TelfLog())
        core.load(program)
        if core._decoded is None:
            pytest.skip("fast path disabled in this environment")
        # Swap one emission for a wait without changing the length.
        program.instructions[3] = assemble("waiti 11\nhalt").instructions[0]
        core.start()
        engine.run(until=10_000)
        assert core.counters()["codewords"] == 1
        assert core.position == 25
