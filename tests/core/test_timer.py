"""Absolute timer: position/wall mapping, stalls, realignment."""

import pytest

from repro.core.timer import AbsoluteTimer
from repro.errors import TimingViolation


class TestWallOf:
    def test_identity_at_start(self):
        assert AbsoluteTimer().wall_of(0) == 0

    def test_linear_mapping(self):
        assert AbsoluteTimer().wall_of(42) == 42

    def test_behind_cursor_rejected(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 10)
        with pytest.raises(TimingViolation):
            timer.wall_of(5)


class TestAdvance:
    def test_advance_without_stall(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 10)
        assert timer.stall_cycles == 0
        assert timer.wall_of(15) == 15

    def test_advance_with_stall(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 25)
        assert timer.stall_cycles == 15
        assert timer.wall_of(12) == 27

    def test_stalls_accumulate(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 15)
        timer.advance_to(20, 30)
        assert timer.stall_cycles == 10

    def test_backwards_wall_rejected(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 20)
        with pytest.raises(TimingViolation):
            timer.advance_to(15, 20)


class TestRealign:
    def test_realign_forward_counts_stall(self):
        timer = AbsoluteTimer()
        timer.realign_to(10, 25)
        assert timer.stall_cycles == 15
        assert timer.wall_of(11) == 26

    def test_realign_backward_allowed(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 50)
        timer.realign_to(20, 45)  # mapping rewinds (central trigger)
        assert timer.wall_of(25) == 50
        assert timer.stall_cycles == 40  # only the original stall

    def test_realign_behind_position_rejected(self):
        timer = AbsoluteTimer()
        timer.advance_to(10, 10)
        with pytest.raises(TimingViolation):
            timer.realign_to(5, 100)
