"""Decoherence model and fidelity metrics."""


import pytest

from repro.errors import ReproError
from repro.fidelity.decoherence import (circuit_fidelity, circuit_infidelity,
                                        infidelity_sweep, reduction_ratio,
                                        survival_probability)
from repro.fidelity.metrics import (arithmetic_mean, geometric_mean,
                                    normalized_runtime,
                                    runtime_reduction_percent,
                                    summarize_lifetimes)


class TestSurvival:
    def test_zero_duration_is_perfect(self):
        assert survival_probability(0.0, 30.0) == pytest.approx(1.0)

    def test_monotone_in_duration(self):
        a = survival_probability(1000.0, 30.0)
        b = survival_probability(2000.0, 30.0)
        assert b < a < 1.0

    def test_monotone_in_t1(self):
        a = survival_probability(1000.0, 30.0)
        b = survival_probability(1000.0, 300.0)
        assert a < b

    def test_t2_defaults_to_t1(self):
        assert survival_probability(500.0, 50.0) == \
            survival_probability(500.0, 50.0, 50.0)

    def test_t2_cannot_exceed_twice_t1(self):
        with pytest.raises(ReproError):
            survival_probability(1.0, 10.0, 30.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ReproError):
            survival_probability(-1.0, 10.0)

    @pytest.mark.parametrize("t1,t2", [
        (0.0, None), (-5.0, None),       # used to raise, still must
        (10.0, 0.0),                     # used to divide by zero
        (10.0, -3.0),                    # used to return F > 1
    ])
    def test_nonpositive_times_rejected(self, t1, t2):
        with pytest.raises(ReproError, match="positive"):
            survival_probability(100.0, t1, t2)

    def test_small_time_expansion(self):
        # 1 - F ~ (3/4) t (1/T1' terms); check first-order scale.
        t1_us = 100.0
        t_ns = 10.0
        infid = 1.0 - survival_probability(t_ns, t1_us)
        expected = 0.75 * t_ns / (t1_us * 1000.0)
        assert infid == pytest.approx(expected, rel=0.01)


class TestCircuitFidelity:
    def test_product_over_qubits(self):
        lifetimes = {0: 1000.0, 1: 2000.0}
        got = circuit_fidelity(lifetimes, 30.0)
        want = (survival_probability(1000.0, 30.0) *
                survival_probability(2000.0, 30.0))
        assert got == pytest.approx(want)

    def test_infidelity_complement(self):
        lifetimes = {0: 500.0}
        assert circuit_infidelity(lifetimes, 50.0) == \
            pytest.approx(1.0 - circuit_fidelity(lifetimes, 50.0))

    def test_sweep_decreasing_in_t1(self):
        sweep = infidelity_sweep({0: 3000.0}, [30, 100, 300])
        assert sweep[30] > sweep[100] > sweep[300]

    def test_sweep_rejects_nonpositive_t1_values(self):
        with pytest.raises(ReproError, match=r"positive.*\[0\]"):
            infidelity_sweep({0: 3000.0}, [30, 0])
        with pytest.raises(ReproError, match="positive"):
            infidelity_sweep({0: 3000.0}, [-10.0])

    def test_reduction_ratio(self):
        base = {30: 0.10, 300: 0.01}
        ours = {30: 0.02, 300: 0.002}
        ratio = reduction_ratio(base, ours)
        assert ratio[30] == pytest.approx(5.0)
        assert ratio[300] == pytest.approx(5.0)

    def test_longer_schedule_means_higher_infidelity(self):
        short = circuit_infidelity({0: 1000.0, 1: 1000.0}, 30.0)
        long = circuit_infidelity({0: 5000.0, 1: 5000.0}, 30.0)
        assert long > short


class TestMetrics:
    def test_normalized_runtime(self):
        assert normalized_runtime(200, 150) == pytest.approx(0.75)

    def test_normalized_runtime_requires_positive_base(self):
        with pytest.raises(ValueError):
            normalized_runtime(0, 10)

    def test_means(self):
        assert arithmetic_mean([0.5, 1.0]) == pytest.approx(0.75)
        assert geometric_mean([0.25, 1.0]) == pytest.approx(0.5)

    def test_empty_means_name_the_metric(self):
        with pytest.raises(ValueError,
                           match="geometric_mean of normalized runtime"):
            geometric_mean([], metric="normalized runtime")
        with pytest.raises(ValueError,
                           match="arithmetic_mean of makespans"):
            arithmetic_mean([], metric="makespans")

    def test_estimator_api_reexported(self):
        # The package surface is the supported import path; deep
        # submodule imports are deprecated.
        from repro.fidelity import (FidelityEstimate, estimate_fidelity,
                                    survival_fidelity, wilson_interval)
        assert callable(estimate_fidelity) and callable(survival_fidelity)
        assert callable(wilson_interval)
        assert FidelityEstimate.from_counts(3, 4).estimate == \
            pytest.approx(0.75)

    def test_reduction_percent(self):
        assert runtime_reduction_percent([0.772]) == pytest.approx(22.8)

    def test_summarize_lifetimes(self):
        summary = summarize_lifetimes({0: 10.0, 1: 30.0})
        assert summary["count"] == 2
        assert summary["total_ns"] == 40.0
        assert summary["max_ns"] == 30.0

    def test_summarize_empty(self):
        assert summarize_lifetimes({})["count"] == 0
