"""Hybrid topology: mesh shapes, router tree, latency computation."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import build_topology, grid_dimensions


class TestGridDimensions:
    def test_perfect_square(self):
        assert grid_dimensions(16) == (4, 4)

    def test_rectangle(self):
        rows, cols = grid_dimensions(12)
        assert rows * cols == 12

    def test_prime_covers(self):
        rows, cols = grid_dimensions(7)
        assert rows * cols >= 7


class TestMesh:
    def test_line_mesh(self):
        topo = build_topology(5, mesh_kind="line")
        assert topo.are_neighbors(0, 1)
        assert topo.are_neighbors(3, 4)
        assert not topo.are_neighbors(0, 2)

    def test_grid_mesh(self):
        topo = build_topology(9, mesh_kind="grid")
        assert topo.are_neighbors(0, 1)   # horizontal
        assert topo.are_neighbors(0, 3)   # vertical
        assert not topo.are_neighbors(0, 4)

    def test_custom_mesh(self):
        topo = build_topology(4, mesh_kind="custom",
                              mesh_edges=[(0, 3), (1, 2)])
        assert topo.are_neighbors(0, 3)
        assert not topo.are_neighbors(0, 1)

    def test_custom_edge_out_of_range(self):
        with pytest.raises(TopologyError):
            build_topology(3, mesh_kind="custom", mesh_edges=[(0, 9)])

    def test_none_mesh(self):
        topo = build_topology(4, mesh_kind="none")
        assert not topo.are_neighbors(0, 1)

    def test_unknown_mesh_rejected(self):
        with pytest.raises(TopologyError):
            build_topology(4, mesh_kind="torus")


class TestRouterTree:
    def test_single_level(self):
        topo = build_topology(6, fanout=8, mesh_kind="line")
        assert len(topo.routers) == 1
        assert topo.root == 6
        assert topo.children(6) == list(range(6))

    def test_two_levels(self):
        topo = build_topology(20, fanout=4, mesh_kind="line")
        # 20 leaves -> 5 routers -> 2 -> 1: three levels
        assert len(topo.routers) == 5 + 2 + 1
        assert all(c in topo.parent for c in range(20))

    def test_single_controller_gets_root(self):
        topo = build_topology(1)
        assert len(topo.routers) == 1

    def test_balanced_height(self):
        topo = build_topology(64, fanout=8, mesh_kind="line")
        depths = {len(topo.path_to_ancestor(c, topo.root)) - 1
                  for c in range(64)}
        assert depths == {2}

    def test_fanout_validation(self):
        with pytest.raises(TopologyError):
            build_topology(4, fanout=1)


class TestPathsAndLatency:
    def test_common_ancestor_same_subtree(self):
        topo = build_topology(16, fanout=4, mesh_kind="line")
        assert topo.common_ancestor([0, 1]) == topo.parent[0]

    def test_common_ancestor_distant(self):
        topo = build_topology(16, fanout=4, mesh_kind="line")
        assert topo.common_ancestor([0, 15]) == topo.root

    def test_path_to_ancestor(self):
        topo = build_topology(16, fanout=4, mesh_kind="line")
        path = topo.path_to_ancestor(0, topo.root)
        assert path[0] == 0 and path[-1] == topo.root

    def test_not_ancestor_rejected(self):
        topo = build_topology(16, fanout=4, mesh_kind="line")
        other_leaf_parent = topo.parent[15]
        with pytest.raises(TopologyError):
            topo.path_to_ancestor(0, other_leaf_parent)

    def test_neighbor_message_latency(self):
        topo = build_topology(8, mesh_kind="line", neighbor_link_cycles=4)
        assert topo.message_latency_cycles(2, 3) == 4

    def test_remote_message_latency_via_tree(self):
        topo = build_topology(16, fanout=4, mesh_kind="line",
                              router_hop_cycles=8)
        # 0 and 15: up two hops to root, down two hops
        assert topo.message_latency_cycles(0, 15) == 4 * 8

    def test_self_latency_zero(self):
        topo = build_topology(4, mesh_kind="line")
        assert topo.message_latency_cycles(2, 2) == 0

    def test_subtree_controllers(self):
        topo = build_topology(16, fanout=4, mesh_kind="line")
        first = topo.parent[0]
        assert topo.subtree_controllers(first) == [0, 1, 2, 3]
        assert topo.subtree_controllers(topo.root) == list(range(16))

    def test_max_downstream_cycles(self):
        topo = build_topology(16, fanout=4, mesh_kind="line",
                              router_hop_cycles=8)
        assert topo.max_downstream_cycles(topo.root, [0, 5]) == 16
        assert topo.max_downstream_cycles(topo.parent[0], [0, 1]) == 8
