"""Router aggregation logic (Figure 8)."""

import pytest

from repro.errors import SynchronizationError
from repro.network.messages import BookingMessage, TimePointMessage
from repro.network.router import Router, SyncGroupInfo
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog


class FakeFabric:
    def __init__(self):
        self.to_parent = []
        self.to_children = []

    def router_to_parent(self, router, message):
        self.to_parent.append(message)

    def router_to_children(self, router, children, message):
        self.to_children.append((tuple(children), message))


def make_router(expected, is_destination=True, down_bound=10):
    engine = Engine()
    router = Router("R", 100, engine, TelfLog(), process_cycles=2)
    router.fabric = FakeFabric()
    router.parent_address = 200 if not is_destination else None
    router.configure_group(SyncGroupInfo(
        group=7, expected=list(expected), member_children=list(expected),
        is_destination=is_destination, down_bound=down_bound))
    return engine, router


class TestAggregation:
    def test_waits_for_all_children(self):
        engine, router = make_router([0, 1, 2])
        router.receive_booking(BookingMessage(7, 0, 0, 50))
        router.receive_booking(BookingMessage(7, 0, 1, 80))
        engine.run()
        assert router.fabric.to_children == []
        router.receive_booking(BookingMessage(7, 0, 2, 60))
        engine.run()
        assert len(router.fabric.to_children) == 1

    def test_tm_is_max_of_bookings(self):
        engine, router = make_router([0, 1], down_bound=5)
        router.receive_booking(BookingMessage(7, 0, 0, 50))
        router.receive_booking(BookingMessage(7, 0, 1, 90))
        engine.run()
        (_, message), = router.fabric.to_children
        assert message.time_point == 90

    def test_tm_raised_to_cover_broadcast(self):
        engine, router = make_router([0, 1], down_bound=100)
        router.receive_booking(BookingMessage(7, 0, 0, 5))
        router.receive_booking(BookingMessage(7, 0, 1, 6))
        engine.run()
        (_, message), = router.fabric.to_children
        # ready = now(0) + process(2); Tm >= ready + down_bound
        assert message.time_point == 102

    def test_non_destination_forwards_to_parent(self):
        engine, router = make_router([0, 1], is_destination=False)
        router.receive_booking(BookingMessage(7, 0, 0, 50))
        router.receive_booking(BookingMessage(7, 0, 1, 70))
        engine.run()
        assert len(router.fabric.to_parent) == 1
        assert router.fabric.to_parent[0].time_point == 70
        assert router.fabric.to_parent[0].origin == 100

    def test_epochs_do_not_mix(self):
        engine, router = make_router([0, 1])
        router.receive_booking(BookingMessage(7, 0, 0, 50))
        router.receive_booking(BookingMessage(7, 1, 0, 60))
        engine.run()
        assert router.fabric.to_children == []
        router.receive_booking(BookingMessage(7, 0, 1, 40))
        engine.run()
        (_, message), = router.fabric.to_children
        assert message.time_point == 50

    def test_time_point_from_parent_rebroadcast(self):
        engine, router = make_router([0, 1], is_destination=False)
        router.receive_time_point(TimePointMessage(7, 0, 123))
        engine.run()
        (children, message), = router.fabric.to_children
        assert message.time_point == 123

    def test_unknown_group_rejected(self):
        engine, router = make_router([0])
        with pytest.raises(SynchronizationError):
            router.receive_booking(BookingMessage(99, 0, 0, 1))

    def test_unexpected_origin_rejected(self):
        engine, router = make_router([0, 1])
        with pytest.raises(SynchronizationError):
            router.receive_booking(BookingMessage(7, 0, 5, 1))

    def test_duplicate_booking_rejected(self):
        engine, router = make_router([0, 1])
        router.receive_booking(BookingMessage(7, 0, 0, 1))
        with pytest.raises(SynchronizationError):
            router.receive_booking(BookingMessage(7, 0, 0, 2))


class TestAbandon:
    """Teardown drain: incomplete rendezvous must not leak forever."""

    def test_partial_epoch_abandoned_and_counted(self):
        engine, router = make_router([0, 1, 2])
        router.receive_booking(BookingMessage(7, 0, 0, 5))
        router.receive_booking(BookingMessage(7, 0, 1, 6))
        assert router.abandon() == 1
        assert router.abandoned_epochs == 1
        assert router._pending == {}
        # The drained bucket is really gone: a fresh epoch 0 booking
        # from the same member is a new rendezvous, not a duplicate.
        router.receive_booking(BookingMessage(7, 0, 0, 5))

    def test_complete_run_abandons_nothing(self):
        engine, router = make_router([0, 1])
        router.receive_booking(BookingMessage(7, 0, 0, 5))
        router.receive_booking(BookingMessage(7, 0, 1, 9))
        engine.run()
        assert router.abandon() == 0
        assert router.abandoned_epochs == 0

    def test_multiple_partial_epochs_counted(self):
        engine, router = make_router([0, 1])
        router.receive_booking(BookingMessage(7, 0, 0, 5))
        router.receive_booking(BookingMessage(7, 1, 0, 6))
        router.receive_booking(BookingMessage(7, 2, 0, 7))
        assert router.abandon() == 3
        assert router.abandoned_epochs == 3

    def test_system_run_drains_and_reports(self):
        """A full ControlSystem run exposes the drained count; a clean
        run reports zero."""
        from repro.isa import assemble
        from repro.sim import ControlSystem

        system = ControlSystem(3, mesh_kind="line")
        system.register_sync_group(40, [0, 1])
        for address in (0, 1):
            system.load_program(address,
                                assemble("sync 40,1\nwaiti 1\nhalt"))
        system.run()
        assert system.abandoned_sync_epochs == 0
