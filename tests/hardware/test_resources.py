"""FPGA resource model: Table 1 calibration and extrapolation."""

import pytest

from repro.hardware.resources import (CONTROL_BOARD, EVENT_QUEUE,
                                      READOUT_BOARD, SYNC_UNIT,
                                      ResourceEstimate, board_cost,
                                      custom_board, event_queue_cost, table1)


class TestTable1Calibration:
    def test_control_board_matches_paper(self):
        cost = board_cost(CONTROL_BOARD)
        assert round(cost.luts) == 4155
        assert round(cost.brams, 1) == 75.0
        assert round(cost.ffs) == 6392

    def test_readout_board_matches_paper(self):
        cost = board_cost(READOUT_BOARD)
        assert round(cost.luts) == 2435
        assert round(cost.brams, 1) == 45.0
        assert round(cost.ffs) == 3192

    def test_event_queue_row(self):
        assert EVENT_QUEUE.luts == 86
        assert EVENT_QUEUE.brams == 1.5
        assert EVENT_QUEUE.ffs == 160

    def test_bram_megabits(self):
        # Paper: control board uses 2.46 Mb of block RAM (75 * 32 Kb).
        assert board_cost(CONTROL_BOARD).bram_mb == pytest.approx(2.34, abs=0.2)

    def test_sync_unit_is_13_luts(self):
        assert SYNC_UNIT.luts == 13

    def test_table_renders_three_rows(self):
        rows = table1()
        assert len(rows) == 3
        assert rows[0]["luts"] == 4155


class TestExtrapolation:
    def test_queue_cost_scales_with_depth(self):
        deeper = event_queue_cost(depth=2048)
        assert deeper.brams == pytest.approx(3.0)
        assert deeper.luts == pytest.approx(EVENT_QUEUE.luts)

    def test_queue_cost_scales_with_width(self):
        wider = event_queue_cost(width_bits=76)
        assert wider.luts == pytest.approx(2 * EVENT_QUEUE.luts)

    def test_channels_scale_linearly(self):
        small = board_cost(custom_board("c4", 4))
        big = board_cost(custom_board("c8", 8))
        delta = big.luts - small.luts
        assert delta == pytest.approx(4 * EVENT_QUEUE.luts)

    def test_estimate_addition(self):
        total = ResourceEstimate(1, 2, 3) + ResourceEstimate(10, 20, 30)
        assert (total.luts, total.brams, total.ffs) == (11, 22, 33)

    def test_estimate_scaling(self):
        assert ResourceEstimate(2, 3, 4).scaled(2.5).luts == 5.0
