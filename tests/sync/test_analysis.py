"""Analytic BISP model (sections 4.2-4.4) and scheme cost formulas."""

from repro.sync.analysis import (Participant, actual_start,
                                 bisp_feedback_cost, is_zero_overhead,
                                 lockstep_feedback_cost, nearby_sync_times,
                                 sync_overhead, theoretical_earliest,
                                 timing_diagram)


class TestOverheadFormula:
    def test_zero_overhead_when_latency_hidden(self):
        # Figure 5b: every booking lead covers the round trip.
        parts = [Participant(10, 40, 18), Participant(25, 40, 18),
                 Participant(60, 40, 18)]
        assert theoretical_earliest(parts) == 100
        assert actual_start(parts) == 100
        assert is_zero_overhead(parts)

    def test_figure7_overhead(self):
        # D2 < L2: overhead = L2 - D2 for the latest participant.
        parts = [Participant(10, 30, 12), Participant(25, 30, 12),
                 Participant(60, 5, 12)]
        assert sync_overhead(parts) == 12 - 5

    def test_overhead_never_negative(self):
        parts = [Participant(0, 100, 1), Participant(1, 100, 1)]
        assert sync_overhead(parts) == 0

    def test_single_dominating_latency(self):
        parts = [Participant(0, 0, 50), Participant(0, 10, 1)]
        assert actual_start(parts) == 50
        assert sync_overhead(parts) == 40


class TestNearbyTimes:
    def test_resume_is_max_booking_plus_latency(self):
        resume, task = nearby_sync_times(10, 40, latency=4, delta=8)
        assert resume == 44
        assert task == 48

    def test_task_not_before_countdown(self):
        resume, task = nearby_sync_times(0, 0, latency=4, delta=2)
        assert task == 4  # delta < N clamps to the countdown


class TestSchemeCosts:
    def test_lockstep_serializes(self):
        assert lockstep_feedback_cost(4, broadcast=25, reserve=5) == 120

    def test_bisp_overlaps_groups(self):
        groups = [[(10, 5), (12, 5)], [(8, 5)]]
        assert bisp_feedback_cost(groups) == 17 + 13

    def test_bisp_empty_group_free(self):
        assert bisp_feedback_cost([[]]) == 0


class TestDiagram:
    def test_diagram_renders(self):
        parts = [Participant(10, 30, 12), Participant(40, 30, 12)]
        art = timing_diagram(parts, ["C0", "C1"])
        assert "C0" in art and "B" in art and "S" in art
        assert "overhead" in art
