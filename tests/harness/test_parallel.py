"""Parallel sweep harness: serial parity, caching, spawn safety."""

import os
import pickle
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.harness.parallel import (ORPHAN_TMP_SECONDS, CellResult,
                                    SweepCache, SweepTask, build_tasks,
                                    clear_cell_caches, run_cell,
                                    run_suite_parallel)
from repro.isa import decoded
from repro.sim.config import SimulationConfig

SCALE = 0.02


def assert_outcomes_equal(left, right):
    assert [o.name for o in left] == [o.name for o in right]
    for a, b in zip(left, right):
        assert a.num_qubits == b.num_qubits
        assert a.num_ops == b.num_ops
        assert a.feedback_ops == b.feedback_ops
        assert a.makespan_cycles == b.makespan_cycles
        assert a.stall_cycles == b.stall_cycles


class TestParity:
    def test_parallel_matches_serial(self, tiny_outcomes):
        parallel = run_suite_parallel(scale=SCALE, processes=2)
        assert_outcomes_equal(parallel, tiny_outcomes)

    def test_in_process_matches_serial(self, tiny_outcomes):
        inproc = run_suite_parallel(scale=SCALE, processes=1)
        assert_outcomes_equal(inproc, tiny_outcomes)

    def test_scheme_rankings_identical(self, tiny_outcomes):
        parallel = run_suite_parallel(scale=SCALE, processes=2)
        serial_rank = [o.normalized() for o in tiny_outcomes]
        parallel_rank = [o.normalized() for o in parallel]
        assert serial_rank == parallel_rank

    def test_workload_filter(self):
        outcomes = run_suite_parallel(
            scale=SCALE, processes=1, spec_names=["bv_n400", "qft_n30"])
        assert [o.name for o in outcomes] == ["bv_n400", "qft_n30"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            build_tasks(SCALE, ("bisp",), spec_names=["nope"])


class TestTasks:
    def test_tasks_are_picklable_and_deterministic(self):
        tasks = build_tasks(SCALE, ("bisp", "lockstep"))
        assert len(tasks) == 24  # 12 workloads x 2 schemes
        rebuilt = pickle.loads(pickle.dumps(tasks))
        assert rebuilt == tasks
        assert [t.cache_key() for t in rebuilt] == \
               [t.cache_key() for t in tasks]

    def test_cache_key_sensitivity(self):
        base, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        other_seed, = build_tasks(SCALE, ("bisp",), device_seed=999,
                                  spec_names=["bv_n400"])
        other_config, = build_tasks(
            SCALE, ("bisp",), config=SimulationConfig(neighbor_link_cycles=9),
            spec_names=["bv_n400"])
        keys = {base.cache_key(), other_seed.cache_key(),
                other_config.cache_key()}
        assert len(keys) == 3

    def test_run_cell_matches_run_suite_numbers(self, tiny_outcomes):
        task, = build_tasks(SCALE, ("bisp",), spec_names=["logical_t_n432"])
        cell = run_cell(task)
        reference = {o.name: o for o in tiny_outcomes}["logical_t_n432"]
        assert cell.makespan_cycles == reference.makespan_cycles["bisp"]
        assert cell.feedback_ops == reference.feedback_ops


class TestCache:
    def test_cache_hit_skips_recompute(self, tmp_path):
        cache_dir = str(tmp_path / "sweep")
        first = run_suite_parallel(scale=SCALE, processes=1,
                                   cache_dir=cache_dir,
                                   spec_names=["bv_n400"])
        cache = SweepCache(cache_dir)
        assert len(cache) == 2  # two schemes
        second = run_suite_parallel(scale=SCALE, processes=1,
                                    cache_dir=cache_dir,
                                    spec_names=["bv_n400"])
        assert_outcomes_equal(first, second)

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "sweep")
        run_suite_parallel(scale=SCALE, processes=1, cache_dir=cache_dir,
                           spec_names=["bv_n400"])
        for path in (tmp_path / "sweep").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        outcomes = run_suite_parallel(scale=SCALE, processes=1,
                                      cache_dir=cache_dir,
                                      spec_names=["bv_n400"])
        assert outcomes[0].makespan_cycles["bisp"] > 0

    def test_roundtrip_value(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        cell = run_cell(task)
        cache.put(task.cache_key(), cell)
        assert cache.get(task.cache_key()) == cell
        assert cache.get("0" * 64) is None


@pytest.mark.parallel
class TestSpawn:
    def test_spawn_start_method_smoke(self):
        """Workers must survive pickling under spawn (fresh interpreter)."""
        outcomes = run_suite_parallel(
            scale=SCALE, processes=2, start_method="spawn",
            spec_names=["bv_n400"], schemes=("bisp", "lockstep"))
        assert outcomes[0].makespan_cycles["bisp"] > 0


class TestOrphanTmpSweep:
    """A worker killed between mkstemp and os.replace must not leak its
    temp file forever: opening the cache reclaims it (regression for the
    kill-resume leak)."""

    def _cache_dir(self, tmp_path):
        cache_dir = tmp_path / "sweep"
        cache_dir.mkdir()
        return cache_dir

    def _dead_pid(self):
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        return proc.pid

    def test_dead_writer_tmp_swept_on_open(self, tmp_path):
        cache_dir = self._cache_dir(tmp_path)
        orphan = cache_dir / "tmp-{}-leak.tmp".format(self._dead_pid())
        orphan.write_bytes(b"partial pickle")
        SweepCache(str(cache_dir))
        assert not orphan.exists()
        assert list(cache_dir.glob("*.tmp")) == []

    def test_live_writer_fresh_tmp_kept(self, tmp_path):
        """A concurrent live writer's fresh temp file is not clobbered."""
        cache_dir = self._cache_dir(tmp_path)
        live = cache_dir / "tmp-{}-inflight.tmp".format(os.getpid())
        live.write_bytes(b"in flight")
        removed = SweepCache(str(cache_dir)).sweep_orphan_tmps()
        assert removed == 0
        assert live.exists()

    def test_stale_tmp_swept_by_age(self, tmp_path):
        """TTL backstop: even a live-looking PID (reuse) loses its claim
        once the temp file is older than ORPHAN_TMP_SECONDS."""
        cache_dir = self._cache_dir(tmp_path)
        cache = SweepCache(str(cache_dir), sweep_orphans=False)
        stale = cache_dir / "tmp-{}-stale.tmp".format(os.getpid())
        stale.write_bytes(b"ancient")
        old = time.time() - ORPHAN_TMP_SECONDS - 60
        os.utime(stale, (old, old))
        assert cache.sweep_orphan_tmps() == 1
        assert not stale.exists()

    def test_foreign_tmp_name_only_aged_out(self, tmp_path):
        """Temp files without our pid prefix fall back to the TTL test."""
        cache_dir = self._cache_dir(tmp_path)
        foreign = cache_dir / "download.tmp"
        foreign.write_bytes(b"not ours")
        cache = SweepCache(str(cache_dir))
        assert foreign.exists()  # fresh: kept
        old = time.time() - ORPHAN_TMP_SECONDS - 60
        os.utime(foreign, (old, old))
        assert cache.sweep_orphan_tmps() == 1
        assert not foreign.exists()

    def test_entries_never_swept(self, tmp_path):
        cache_dir = self._cache_dir(tmp_path)
        cache = SweepCache(str(cache_dir))
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        cache.put(task.cache_key(), run_cell(task))
        orphan = cache_dir / "tmp-{}-leak.tmp".format(self._dead_pid())
        orphan.write_bytes(b"partial")
        assert SweepCache(str(cache_dir)).sweep_orphan_tmps() == 0
        assert cache.get(task.cache_key()) is not None

    def test_put_leaves_no_tmp(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        cache.put(task.cache_key(), run_cell(task))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_resume_sweep_leaves_zero_tmps(self, tmp_path):
        """End-to-end: resume a sweep over a cache dir littered with a
        killed worker's orphan; the run completes and no .tmp remains."""
        cache_dir = self._cache_dir(tmp_path)
        orphan = cache_dir / "tmp-{}-killed.tmp".format(self._dead_pid())
        orphan.write_bytes(b"\x80\x04 partial")
        outcomes = run_suite_parallel(scale=SCALE, processes=1,
                                      cache_dir=str(cache_dir),
                                      spec_names=["bv_n400"])
        assert outcomes[0].makespan_cycles["bisp"] > 0
        assert list(cache_dir.glob("*.tmp")) == []
        assert len(list(cache_dir.glob("*.pkl"))) == 2

    def test_sweep_can_be_disabled(self, tmp_path):
        cache_dir = self._cache_dir(tmp_path)
        orphan = cache_dir / "tmp-{}-leak.tmp".format(self._dead_pid())
        orphan.write_bytes(b"partial")
        SweepCache(str(cache_dir), sweep_orphans=False)
        assert orphan.exists()


class TestFastpathFlagPropagation:
    """REPRO_NO_FASTPATH / REPRO_REPLAY_TIER must reach workers through
    the task record — a spawn pool's fresh interpreter does not inherit
    the parent's environment mutations made after pool creation."""

    def test_build_tasks_capture_flags(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        assert task.no_fastpath is True
        assert task.replay_tier == "legacy"
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        monkeypatch.setenv("REPRO_REPLAY_TIER", "block")
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        assert task.no_fastpath is False
        assert task.replay_tier == "block"

    def test_flags_not_in_cache_key(self):
        """Tier flags deliberately do NOT key the cache: results are
        bit-identical across tiers by contract, so entries are shared."""
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        fast_key = task.cache_key()
        legacy = replace(task, no_fastpath=True, replay_tier="legacy")
        assert legacy.cache_key() == fast_key

    def test_run_cell_applies_task_flags(self, monkeypatch):
        """With ambient env unset, a no_fastpath task still runs the
        legacy interpreter — observable because legacy never decodes."""
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_REPLAY_TIER", raising=False)
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        legacy_task = replace(task, no_fastpath=True, replay_tier="legacy")
        clear_cell_caches()
        decoded.clear_decode_caches()
        legacy_cell = run_cell(legacy_task)
        assert decoded.decode_cache_stats()["by_content"] == 0
        clear_cell_caches()
        fast_cell = run_cell(task)
        assert decoded.decode_cache_stats()["by_content"] > 0
        assert os.environ.get("REPRO_NO_FASTPATH") is None  # restored
        assert legacy_cell == fast_cell  # tier contract: bit-identical

    def test_task_environment_restores_prior_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "0")
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        legacy_task = replace(task, no_fastpath=True)
        run_cell(legacy_task)
        assert os.environ["REPRO_NO_FASTPATH"] == "0"


@pytest.mark.parallel
class TestSpawnFlagPropagation:
    def test_no_fastpath_reaches_spawn_workers(self, monkeypatch):
        """--verify-parallel style run: spawn workers honor the flag and
        produce the same numbers as the fast serial path."""
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        fast = run_suite_parallel(scale=SCALE, processes=1,
                                  spec_names=["bv_n400"],
                                  schemes=("bisp",))
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        legacy = run_suite_parallel(scale=SCALE, processes=2,
                                    start_method="spawn",
                                    spec_names=["bv_n400"],
                                    schemes=("bisp",))
        assert_outcomes_equal(fast, legacy)


class TestReclaimLock:
    """Orphan-tmp reclaim is single-flight across concurrent store/cache
    opens: an advisory flock serializes the sweep, and losers skip it
    instead of racing the winner's unlinks (PR-7 satellite fix)."""

    def test_lock_is_exclusive_while_held(self, tmp_path):
        cache = SweepCache(str(tmp_path), sweep_orphans=False)
        other = SweepCache(str(tmp_path), sweep_orphans=False)
        with cache._reclaim_lock() as acquired:
            assert acquired
            with other._reclaim_lock() as second:
                assert not second

    def test_lock_released_after_sweep(self, tmp_path):
        cache = SweepCache(str(tmp_path), sweep_orphans=False)
        with cache._reclaim_lock() as acquired:
            assert acquired
        with cache._reclaim_lock() as again:
            assert again

    def test_contended_sweep_returns_zero_not_raises(self, tmp_path):
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        orphan = tmp_path / "tmp-{}-leak.tmp".format(proc.pid)
        orphan.write_bytes(b"partial")
        holder = SweepCache(str(tmp_path), sweep_orphans=False)
        loser = SweepCache(str(tmp_path), sweep_orphans=False)
        with holder._reclaim_lock() as acquired:
            assert acquired
            assert loser.sweep_orphan_tmps() == 0  # skipped, no race
            assert orphan.exists()
        assert loser.sweep_orphan_tmps() == 1
        assert not orphan.exists()

    def test_concurrent_opens_race_clean(self, tmp_path):
        """Many processes opening one littered store at once: the orphan
        is reclaimed and nobody crashes on a vanished tmp file."""
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        for index in range(4):
            orphan = tmp_path / "tmp-{}-leak{}.tmp".format(proc.pid,
                                                           index)
            orphan.write_bytes(b"partial")
        script = ("import sys; sys.path.insert(0, {!r}); "
                  "from repro.harness.parallel import SweepCache; "
                  "SweepCache({!r})").format(
                      os.path.join(os.path.dirname(os.path.dirname(
                          os.path.dirname(os.path.abspath(__file__)))),
                          "src"),
                      str(tmp_path))
        procs = [subprocess.Popen([sys.executable, "-c", script])
                 for _ in range(4)]
        assert [p.wait() for p in procs] == [0, 0, 0, 0]
        assert list(tmp_path.glob("*.tmp")) == []


class TestWireSerialization:
    """SweepTask/CellResult JSON wire format (the sweep service ships
    both over HTTP; pickle stays an on-disk-only format)."""

    def test_task_round_trip(self):
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        rebuilt = SweepTask.from_dict(task.to_dict())
        assert rebuilt == task
        assert rebuilt.cache_key() == task.cache_key()

    def test_task_round_trip_through_json_text(self):
        import json

        task, = build_tasks(SCALE, ("lockstep",), spec_names=["qft_n30"])
        rebuilt = SweepTask.from_dict(
            json.loads(json.dumps(task.to_dict())))
        assert rebuilt == task

    def test_task_unknown_field_rejected(self):
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        data = task.to_dict()
        data["surprise"] = 1
        with pytest.raises(ReproError):
            SweepTask.from_dict(data)

    def test_cell_result_round_trip(self):
        import json

        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        cell = run_cell(task)
        rebuilt = CellResult.from_dict(
            json.loads(json.dumps(cell.to_dict())))
        assert rebuilt == cell
        assert rebuilt.lifetimes_ns == cell.lifetimes_ns
        assert all(isinstance(k, int) for k in rebuilt.lifetimes_ns)


class TestCompileCachePlumbing:
    """compile_cache_dir: wire format, cache-key exclusion, execution."""

    def test_field_round_trips(self):
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        task = replace(task, compile_cache_dir="/tmp/somewhere")
        rebuilt = SweepTask.from_dict(task.to_dict())
        assert rebuilt.compile_cache_dir == "/tmp/somewhere"
        assert rebuilt == task

    def test_not_in_cache_key(self):
        """Cached compilations are bit-identical by contract, so the
        result-cache key must not fragment on the compile-cache dir."""
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        warm = replace(task, compile_cache_dir="/tmp/somewhere")
        assert warm.cache_key() == task.cache_key()

    def test_run_tasks_counts_and_matches(self, tmp_path):
        """Serial sweeps report exact compile hit/miss tallies, and a
        warm compile cache reproduces cold results bit-for-bit."""
        from repro.harness.parallel import clear_cell_caches, run_tasks

        tasks = build_tasks(SCALE, ("bisp", "lockstep"),
                            spec_names=["bv_n400"])
        clear_cell_caches()
        cold, cold_stats = run_tasks(
            tasks, processes=1, compile_cache_dir=str(tmp_path))
        assert cold_stats.compile_misses == 2
        assert cold_stats.compile_hits == 0
        clear_cell_caches()
        warm, warm_stats = run_tasks(
            tasks, processes=1, compile_cache_dir=str(tmp_path))
        assert warm_stats.compile_hits == 2
        assert warm_stats.compile_misses == 0
        assert warm == cold

    def test_task_level_dir_wins(self, tmp_path):
        """A task that already carries a dir keeps it when run_tasks is
        handed a different one."""
        from repro.harness.parallel import run_tasks

        clear_cell_caches()
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        pinned = str(tmp_path / "pinned")
        tasks = [replace(task, compile_cache_dir=pinned)]
        run_tasks(tasks, processes=1,
                  compile_cache_dir=str(tmp_path / "other"))
        assert len(list((tmp_path / "pinned").glob("*.pkl"))) == 1
        assert not (tmp_path / "other").exists() or \
            not list((tmp_path / "other").glob("*.pkl"))
