"""Parallel sweep harness: serial parity, caching, spawn safety."""

import pickle

import pytest

from repro.harness.parallel import (SweepCache, build_tasks, run_cell,
                                    run_suite_parallel)
from repro.sim.config import SimulationConfig

SCALE = 0.02


def assert_outcomes_equal(left, right):
    assert [o.name for o in left] == [o.name for o in right]
    for a, b in zip(left, right):
        assert a.num_qubits == b.num_qubits
        assert a.num_ops == b.num_ops
        assert a.feedback_ops == b.feedback_ops
        assert a.makespan_cycles == b.makespan_cycles
        assert a.stall_cycles == b.stall_cycles


class TestParity:
    def test_parallel_matches_serial(self, tiny_outcomes):
        parallel = run_suite_parallel(scale=SCALE, processes=2)
        assert_outcomes_equal(parallel, tiny_outcomes)

    def test_in_process_matches_serial(self, tiny_outcomes):
        inproc = run_suite_parallel(scale=SCALE, processes=1)
        assert_outcomes_equal(inproc, tiny_outcomes)

    def test_scheme_rankings_identical(self, tiny_outcomes):
        parallel = run_suite_parallel(scale=SCALE, processes=2)
        serial_rank = [o.normalized() for o in tiny_outcomes]
        parallel_rank = [o.normalized() for o in parallel]
        assert serial_rank == parallel_rank

    def test_workload_filter(self):
        outcomes = run_suite_parallel(
            scale=SCALE, processes=1, spec_names=["bv_n400", "qft_n30"])
        assert [o.name for o in outcomes] == ["bv_n400", "qft_n30"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            build_tasks(SCALE, ("bisp",), spec_names=["nope"])


class TestTasks:
    def test_tasks_are_picklable_and_deterministic(self):
        tasks = build_tasks(SCALE, ("bisp", "lockstep"))
        assert len(tasks) == 24  # 12 workloads x 2 schemes
        rebuilt = pickle.loads(pickle.dumps(tasks))
        assert rebuilt == tasks
        assert [t.cache_key() for t in rebuilt] == \
               [t.cache_key() for t in tasks]

    def test_cache_key_sensitivity(self):
        base, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        other_seed, = build_tasks(SCALE, ("bisp",), device_seed=999,
                                  spec_names=["bv_n400"])
        other_config, = build_tasks(
            SCALE, ("bisp",), config=SimulationConfig(neighbor_link_cycles=9),
            spec_names=["bv_n400"])
        keys = {base.cache_key(), other_seed.cache_key(),
                other_config.cache_key()}
        assert len(keys) == 3

    def test_run_cell_matches_run_suite_numbers(self, tiny_outcomes):
        task, = build_tasks(SCALE, ("bisp",), spec_names=["logical_t_n432"])
        cell = run_cell(task)
        reference = {o.name: o for o in tiny_outcomes}["logical_t_n432"]
        assert cell.makespan_cycles == reference.makespan_cycles["bisp"]
        assert cell.feedback_ops == reference.feedback_ops


class TestCache:
    def test_cache_hit_skips_recompute(self, tmp_path):
        cache_dir = str(tmp_path / "sweep")
        first = run_suite_parallel(scale=SCALE, processes=1,
                                   cache_dir=cache_dir,
                                   spec_names=["bv_n400"])
        cache = SweepCache(cache_dir)
        assert len(cache) == 2  # two schemes
        second = run_suite_parallel(scale=SCALE, processes=1,
                                    cache_dir=cache_dir,
                                    spec_names=["bv_n400"])
        assert_outcomes_equal(first, second)

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "sweep")
        run_suite_parallel(scale=SCALE, processes=1, cache_dir=cache_dir,
                           spec_names=["bv_n400"])
        for path in (tmp_path / "sweep").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        outcomes = run_suite_parallel(scale=SCALE, processes=1,
                                      cache_dir=cache_dir,
                                      spec_names=["bv_n400"])
        assert outcomes[0].makespan_cycles["bisp"] > 0

    def test_roundtrip_value(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        task, = build_tasks(SCALE, ("bisp",), spec_names=["bv_n400"])
        cell = run_cell(task)
        cache.put(task.cache_key(), cell)
        assert cache.get(task.cache_key()) == cell
        assert cache.get("0" * 64) is None


@pytest.mark.parallel
class TestSpawn:
    def test_spawn_start_method_smoke(self):
        """Workers must survive pickling under spawn (fresh interpreter)."""
        outcomes = run_suite_parallel(
            scale=SCALE, processes=2, start_method="spawn",
            spec_names=["bv_n400"], schemes=("bisp", "lockstep"))
        assert outcomes[0].makespan_cycles["bisp"] > 0
