"""Workload registry: names, validation, scaling rules, suite views."""

import pytest

from repro.harness import fig15_suite
from repro.harness.registry import (Workload, WorkloadRegistryError,
                                    all_workloads, get_workload, register,
                                    register_workload, unregister,
                                    workload_names)
from repro.harness.runner import suite
from repro.quantum.circuit import QuantumCircuit


def _toy_builder(size):
    circuit = QuantumCircuit(max(2, size))
    circuit.h(0)
    return circuit


def toy(name="toy_n8", **overrides):
    params = dict(name=name, builder=_toy_builder, size=8, min_size=2)
    params.update(overrides)
    return Workload(**params)


class TestPopulation:
    def test_at_least_seventeen_workloads(self):
        assert len(workload_names()) >= 17

    def test_paper_suite_is_twelve(self):
        paper = workload_names(tags=("paper",))
        assert len(paper) == 12
        assert paper[0] == "adder_n577"

    def test_at_least_four_new_families(self):
        extra = workload_names(tags=("extra",))
        families = {name.rsplit("_", 1)[0] for name in extra}
        assert len(families) >= 4

    def test_fig15_suite_matches_paper_tag(self):
        specs = fig15_suite(scale=0.02)
        assert [s.name for s in specs] == workload_names(tags=("paper",))

    def test_suite_covers_whole_registry(self):
        assert [s.name for s in suite(scale=0.02)] == workload_names()

    def test_suite_names_filter_preserves_order(self):
        specs = suite(scale=0.02, names=["qft_n30", "bv_n400"])
        assert [s.name for s in specs] == ["qft_n30", "bv_n400"]

    def test_unknown_name_lists_registered(self):
        with pytest.raises(WorkloadRegistryError, match="registered"):
            get_workload("no_such_workload")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        register(toy())
        try:
            with pytest.raises(WorkloadRegistryError,
                               match="already registered"):
                register(toy())
        finally:
            unregister("toy_n8")

    def test_decorator_registers_and_returns_fn(self):
        try:
            @register_workload("toy_deco", size=4, tags=("test",))
            def build(size):
                return _toy_builder(size)

            assert build(4).num_qubits == 4
            assert get_workload("toy_deco").tags == ("test",)
        finally:
            unregister("toy_deco")

    @pytest.mark.parametrize("overrides", [
        {"name": "Bad Name"},
        {"name": ""},
        {"size": 0},
        {"min_size": 0},
        {"scale_rule": "cubic"},
        {"substitution_fraction": 1.5},
        {"substitution_fraction": -0.1},
        {"distance_threshold": 0},
        {"mesh_kind": "torus"},
        {"builder": "not callable"},
    ])
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(WorkloadRegistryError):
            register(toy(**overrides))

    def test_rejected_workload_not_registered(self):
        with pytest.raises(WorkloadRegistryError):
            register(toy(mesh_kind="torus"))
        assert "toy_n8" not in workload_names()


class TestScaling:
    def test_linear_rule_with_floor(self):
        workload = get_workload("bv_n400")
        assert workload.scaled_size(1.0) == 400
        assert workload.scaled_size(0.1) == 40
        assert workload.scaled_size(0.001) == workload.min_size

    def test_sqrt_rule_for_code_distance(self):
        workload = get_workload("logical_t_n432")
        assert workload.scaled_size(1.0) == 7
        assert workload.scaled_size(0.25) == max(3, round(7 * 0.5))

    def test_spec_substitution_override_wins(self):
        own = toy(substitution_fraction=0.75)
        spec = own.spec(scale=1.0, substitution_fraction=0.1)
        assert spec.substitution_fraction == 0.75
        spec = toy().spec(scale=1.0, substitution_fraction=0.1)
        assert spec.substitution_fraction == 0.1

    def test_canonical_order_is_stable(self):
        names = workload_names()
        assert names == workload_names()
        assert names.index("adder_n577") == 0
        # Builtin extras come after the paper block, families grouped.
        assert names.index("clifford_t_n100") > names.index("w_state_n1000")

    def test_all_workloads_build_at_tiny_scale(self):
        for workload in all_workloads():
            circuit = workload.build(scale=0.02)
            assert circuit.num_qubits >= 2
            assert len(circuit) > 0
