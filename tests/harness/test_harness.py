"""Evaluation harness: suites, figures, tables (scaled-down)."""

import pytest

from repro.harness import (figure5_nearby,
                           figure7_overhead_sweep, figure13_waveforms,
                           figure14_depths, figure16_sweep, render_figure15,
                           render_figure16, render_table1)
from repro.harness.tables import ascii_bar_chart, format_table


class TestFigure5and7:
    def test_nearby_zero_overhead(self):
        result = figure5_nearby(booking_lead=30)
        assert result["aligned"] == 1
        assert result["simulated_overhead"] == 0
        assert result["analytic_overhead"] == 0

    def test_overhead_decreases_with_lead(self):
        rows = figure7_overhead_sweep([0, 5, 10, 20, 40])
        overheads = [r[1] for r in rows]
        assert overheads == sorted(overheads, reverse=True)
        assert overheads[-1] == 0

    def test_simulation_matches_analytic_model(self):
        for lead, simulated, analytic in figure7_overhead_sweep(
                [0, 4, 8, 12, 16, 24]):
            assert simulated == analytic, lead


class TestFigure13:
    def test_pulses_stay_cycle_aligned(self):
        _, pairs = figure13_waveforms()
        assert len(pairs) >= 10
        offsets = {b - a for a, b in pairs}
        assert len(offsets) == 1  # constant offset despite the waitr ramp

    def test_control_ramp_visible(self):
        system, pairs = figure13_waveforms()
        control = [a for a, _ in pairs]
        gaps = [b - a for a, b in zip(control, control[1:])]
        # The waitr register grows by 40 cycles per inner iteration, so
        # consecutive iteration gaps grow by 40 (and reset at outer loops).
        inner_growth = [b - a for a, b in zip(gaps, gaps[1:])]
        assert 40 in set(inner_growth)


class TestFigure14:
    def test_constant_vs_linear_depth(self):
        rows = figure14_depths([4, 8, 16, 32])
        dyn = [r[1] for r in rows]
        swap = [r[2] for r in rows]
        assert swap == [8, 16, 32, 64]
        assert dyn[-1] - dyn[0] < swap[-1] - swap[0]


class TestFigure16:
    def test_hisq_reduces_infidelity_across_sweep(self):
        data = figure16_sweep(distance=7, t1_values_us=(30, 150, 300))
        for t1 in (30, 150, 300):
            assert data["hisq"][t1] < data["baseline"][t1]
            assert data["reduction_ratio"][t1] > 1.2

    def test_ratio_roughly_constant(self):
        data = figure16_sweep(distance=7, t1_values_us=(30, 300))
        ratios = list(data["reduction_ratio"].values())
        assert max(ratios) / min(ratios) < 1.2

    def test_render(self):
        data = figure16_sweep(distance=5, t1_values_us=(30, 300))
        text = render_figure16(data["t1_values_us"], data["baseline"],
                               data["hisq"])
        assert "reduction" in text


class TestFigure15Scaled:
    @pytest.fixture(scope="class")
    def outcomes(self, tiny_outcomes):
        # Shared session fixture (tests/conftest.py): one serial run of the
        # scale-0.02 suite, reused by the parallel-harness parity tests.
        return tiny_outcomes

    def test_all_thirteen_covered(self, outcomes):
        assert len(outcomes) == 12  # 12 named workloads + avg in render

    def test_bisp_wins_on_feedback_benchmarks(self, outcomes):
        by_name = {o.name: o for o in outcomes}
        assert by_name["logical_t_n864"].normalized() < 0.8
        assert by_name["qft_n300"].normalized() < 0.8

    def test_render_figure15(self, outcomes):
        text = render_figure15(outcomes)
        assert "avg" in text and "reduction" in text


class TestTables:
    def test_table1_renders(self):
        text = render_table1()
        assert "4155" in text and "2435" in text and "86" in text

    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4

    def test_bar_chart(self):
        art = ascii_bar_chart(["one", "two"], [0.5, 1.0], reference=0.772)
        assert art.count("|") >= 4
