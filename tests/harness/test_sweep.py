"""Sweep specs, BENCH artifacts, regression gate, sweep CLI."""

import os

import pytest

from repro.harness.benchjson import (BenchSchemaError, compare_benches,
                                     load_bench, make_bench,
                                     results_digest, validate_bench,
                                     write_bench)
from repro.harness.parallel import (SweepExecutionError, run_tasks,
                                    tasks_from_spec)
from repro.compiler.schemes import scheme_names
from repro.harness.registry import Workload, register, unregister
from repro.harness.spec import (SweepSpec, SweepSpecError,
                                SweepSubmission)
from repro.harness.sweep import main as sweep_main
from repro.harness.sweep import run_sweep
from repro.sim.config import SimulationConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def broken_workload(name, message):
    def explode(size):
        raise RuntimeError(message)
    return Workload(name=name, builder=explode, size=4, tags=("test",))

#: The golden sweep: small, fixed seed, both paper and extra families.
TINY_SPEC = SweepSpec(
    workloads=("bv_n400", "logical_t_n432", "clifford_t_n100",
               "hidden_shift_n64", "repetition_d25", "qaoa_n60"),
    schemes=("bisp", "lockstep"), scales=(0.02,), shots=(1, 3),
    device_seed=1234)


class TestSweepSpec:
    def test_round_trip_identity(self):
        assert SweepSpec.from_json(TINY_SPEC.to_json()) == TINY_SPEC

    def test_round_trip_with_config_and_defaults(self):
        spec = SweepSpec(config=SimulationConfig(neighbor_link_cycles=9))
        rebuilt = SweepSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.config.neighbor_link_cycles == 9

    def test_cells_grid_order_and_size(self):
        spec = SweepSpec(workloads=("bv_n400", "qft_n30"),
                         schemes=("bisp", "lockstep"), scales=(0.02, 0.05),
                         shots=(1,))
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2
        assert [c.workload for c in cells[:4]] == ["bv_n400"] * 4
        assert cells[0].key() == ("bv_n400", "bisp", 0.02, 1)

    def test_default_spec_covers_registry_all_schemes(self):
        spec = SweepSpec(scales=(0.05,))
        assert len(spec.resolved_workloads()) >= 17
        schemes = spec.resolved_schemes()
        assert schemes == scheme_names()
        assert {"bisp", "demand", "lockstep", "oracle",
                "lockstep_window"} <= set(schemes)
        assert spec.num_cells() == \
            len(spec.resolved_workloads()) * len(schemes)

    @pytest.mark.parametrize("kwargs", [
        {"schemes": ()},
        {"schemes": ("bisp", "bisp")},
        {"schemes": ("warp",)},
        {"scales": (0.0,)},
        {"scales": (1.5,)},
        {"scales": (0.1, 0.1)},
        {"shots": (0,)},
        {"shots": (1.5,)},
        {"shots": (2, 2)},
        {"substitution_fraction": 2.0},
        {"workloads": ()},
        {"workloads": ("bv_n400", "bv_n400")},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SweepSpecError):
            SweepSpec(**kwargs)

    def test_unknown_json_field_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown spec field"):
            SweepSpec.from_dict({"scalez": [0.1]})

    def test_unknown_workload_rejected_at_resolution(self):
        spec = SweepSpec(workloads=("nope",))
        with pytest.raises(Exception, match="nope"):
            spec.resolved_workloads()

    def test_unknown_scheme_error_names_it_and_lists_registered(self):
        with pytest.raises(SweepSpecError) as excinfo:
            SweepSpec(schemes=("warp",))
        message = str(excinfo.value)
        assert "warp" in message
        for name in ("bisp", "oracle", "lockstep_window"):
            assert name in message

    def test_unknown_scheme_rejected_from_json(self):
        text = SweepSpec(workloads=("bv_n400",)).to_json()
        broken = text.replace('"schemes": null',
                              '"schemes": ["bisp", "warp"]')
        assert '"warp"' in broken
        with pytest.raises(SweepSpecError, match="warp"):
            SweepSpec.from_json(broken)

    def test_schemes_none_round_trips_and_resolves(self):
        spec = SweepSpec(workloads=("bv_n400",))
        assert spec.schemes is None
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert spec.resolved_schemes() == scheme_names()


class TestExecution:
    def test_serial_parallel_rows_identical(self):
        spec = SweepSpec(workloads=("bv_n400", "repetition_d25"),
                         schemes=("bisp", "lockstep"), scales=(0.02,))
        serial, _ = run_sweep(spec, processes=1)
        parallel, _ = run_sweep(spec, processes=2)
        assert serial == parallel
        assert len(serial) == 4

    def test_shots_axis_recorded(self):
        spec = SweepSpec(workloads=("repetition_d25",), schemes=("bisp",),
                         scales=(0.02,), shots=(3,))
        rows, _ = run_sweep(spec, processes=1)
        (row,) = rows
        assert row["shots"] == 3
        assert row["max_shot_makespan_cycles"] >= row["makespan_cycles"]

    def test_failing_cell_raises_aggregated_error(self):
        register(broken_workload("toy_broken", "boom"))
        try:
            spec = SweepSpec(workloads=("bv_n400", "toy_broken"),
                             schemes=("bisp",), scales=(0.02,))
            with pytest.raises(SweepExecutionError) as excinfo:
                run_tasks(tasks_from_spec(spec), processes=1)
            (failure,) = excinfo.value.failures
            assert failure[0].spec_name == "toy_broken"
            assert "boom" in failure[1]
        finally:
            unregister("toy_broken")

    def test_cache_round_trip_with_shots(self, tmp_path):
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(0.02,), shots=(2,))
        tasks = tasks_from_spec(spec)
        cold, stats_cold = run_tasks(tasks, processes=1,
                                     cache_dir=str(tmp_path))
        warm, stats_warm = run_tasks(tasks, processes=1,
                                     cache_dir=str(tmp_path))
        assert stats_cold.misses == 1 and stats_warm.hits == 1
        assert cold == warm


class TestBenchJson:
    def test_make_bench_validates(self):
        doc = make_bench("demo", [{"label": "x", "value": 1}])
        assert validate_bench(doc) is doc

    def test_write_and_load(self, tmp_path):
        doc = make_bench("demo", [{"label": "x", "value": 1}])
        path = write_bench(str(tmp_path), doc)
        assert os.path.basename(path) == "BENCH_demo.json"
        assert load_bench(path)["results"] == doc["results"]

    @pytest.mark.parametrize("mutate,match", [
        (lambda d: d.pop("machine"), "machine"),
        (lambda d: d.update(name="no spaces"), "name"),
        (lambda d: d.update(kind="other"), "kind"),
        (lambda d: d.update(results=[]), "non-empty"),
        (lambda d: d.update(results=[{"label": {}}]), "results"),
        (lambda d: d.update(results_sha256="feed"), "digest"),
        (lambda d: d.update(extra_key=1), "extra_key"),
    ])
    def test_schema_violations_rejected(self, mutate, match):
        doc = make_bench("demo", [{"label": "x", "value": 1}])
        mutate(doc)
        with pytest.raises(BenchSchemaError, match=match):
            validate_bench(doc)

    def test_sweep_rows_require_cell_identity(self):
        with pytest.raises(BenchSchemaError, match="workload"):
            make_bench("demo", [{"value": 1}], kind="sweep")

    def test_benchmark_rows_need_a_number(self):
        with pytest.raises(BenchSchemaError, match="numeric"):
            make_bench("demo", [{"label": "only-strings"}])

    def test_regression_gate(self):
        base_row = {"workload": "w", "scheme": "bisp", "scale": 0.1,
                    "shots": 1, "num_qubits": 2, "num_ops": 2,
                    "feedback_ops": 0, "makespan_cycles": 100,
                    "sync_stall_cycles": 0, "runtime_ns": 400.0,
                    "fidelity_proxy": 1.0}
        baseline = make_bench("base", [base_row], kind="sweep")
        ok = make_bench("now", [dict(base_row, makespan_cycles=120)],
                        kind="sweep")
        slow = make_bench("now", [dict(base_row, makespan_cycles=130)],
                          kind="sweep")
        gone = make_bench("now", [dict(base_row, workload="other")],
                          kind="sweep")
        assert compare_benches(baseline, ok, max_regression=0.25) == []
        assert any("regression" in v for v in
                   compare_benches(baseline, slow, max_regression=0.25))
        assert any("coverage loss" in v for v in
                   compare_benches(baseline, gone, max_regression=0.25))


class TestGoldenArtifact:
    def test_golden_bench_json(self, update_golden):
        """The tiny fixed-seed sweep reproduces the checked-in artifact
        bit for bit (results + digest; the machine block may differ)."""
        rows, stats = run_sweep(TINY_SPEC, processes=1)
        doc = make_bench("sweep_tiny", rows, kind="sweep",
                         spec=TINY_SPEC.to_dict(),
                         cache={"hits": stats.hits, "misses": stats.misses})
        golden_path = os.path.join(GOLDEN_DIR, "BENCH_sweep_tiny.json")
        if update_golden:
            write_bench(GOLDEN_DIR, doc)
            pytest.skip("golden artifact rewritten")
        golden = load_bench(golden_path)
        assert doc["spec"] == golden["spec"]
        assert doc["results"] == golden["results"]
        assert doc["results_sha256"] == golden["results_sha256"]


class TestSweepCli:
    def test_count_cells(self, capsys):
        assert sweep_main(["--count-cells", "--tags", "paper",
                           "--schemes", "bisp", "lockstep",
                           "--scale", "0.05"]) == 0
        assert capsys.readouterr().out.strip() == "24"

    def test_print_spec_round_trips(self, capsys):
        assert sweep_main(["--print-spec", "--scale", "0.05",
                           "--workloads", "bv_n400"]) == 0
        spec = SweepSpec.from_json(capsys.readouterr().out)
        assert spec.workloads == ("bv_n400",)

    def test_out_writes_valid_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "artifacts")
        code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                           "--workloads", "bv_n400", "--out", out,
                           "--name", "cli_demo", "--quiet"])
        assert code == 0
        doc = load_bench(os.path.join(out, "BENCH_cli_demo.json"))
        assert doc["kind"] == "sweep"
        assert doc["spec"]["workloads"] == ["bv_n400"]

    def test_spec_file_input(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(SweepSpec(workloads=("qft_n30",),
                                   schemes=("bisp",),
                                   scales=(0.02,)).to_json())
        out = str(tmp_path / "artifacts")
        assert sweep_main(["--spec", spec_path, "--out", out,
                           "--quiet"]) == 0
        doc = load_bench(os.path.join(out, "BENCH_sweep.json"))
        assert [r["workload"] for r in doc["results"]] == ["qft_n30"]

    def test_failing_cell_exits_nonzero(self, capsys):
        register(broken_workload("toy_cli_broken", "cli boom"))
        try:
            code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                               "--workloads", "toy_cli_broken",
                               "--processes", "1", "--quiet"])
        finally:
            unregister("toy_cli_broken")
        assert code == 1
        assert "cli boom" in capsys.readouterr().err

    def test_unknown_scheme_exits_nonzero_naming_it(self, capsys):
        code = sweep_main(["--scale", "0.02", "--schemes", "warp",
                           "--workloads", "bv_n400", "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert "warp" in err
        assert "bisp" in err  # registered schemes listed

    def test_list_schemes(self, capsys):
        assert sweep_main(["--list-schemes"]) == 0
        out = capsys.readouterr().out
        for name in scheme_names():
            assert name in out

    def test_comma_separated_schemes(self, capsys):
        assert sweep_main(["--count-cells", "--workloads", "bv_n400",
                           "--schemes", "oracle,lockstep_window",
                           "--scale", "0.02"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_require_cached_fails_cold(self, tmp_path, capsys):
        code = sweep_main(["--scale", "0.02", "--schemes", "bisp",
                           "--workloads", "bv_n400", "--quiet",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--require-cached"])
        assert code == 1
        assert "warm cache" in capsys.readouterr().err

    def test_regression_gate_cli(self, tmp_path, capsys):
        out = str(tmp_path / "a")
        args = ["--scale", "0.02", "--schemes", "bisp",
                "--workloads", "bv_n400", "--quiet"]
        assert sweep_main(args + ["--out", out, "--name", "base"]) == 0
        baseline = os.path.join(out, "BENCH_base.json")
        assert sweep_main(args + ["--baseline", baseline]) == 0
        # Tighten the gate to impossible (-100%): every cell "regresses".
        code = sweep_main(args + ["--baseline", baseline,
                                  "--max-regression", "-1.0"])
        assert code == 1
        assert "regression" in capsys.readouterr().err


class TestSweepSubmission:
    def test_round_trip(self):
        sub = SweepSubmission(spec=TINY_SPEC, name="nightly",
                              owner="alice", priority=3)
        assert SweepSubmission.from_json(sub.to_json()) == sub

    def test_defaults(self):
        sub = SweepSubmission(spec=TINY_SPEC)
        assert (sub.name, sub.owner, sub.priority) == \
            ("sweep", "anonymous", 0)

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "has space"},
        {"name": "has-dash"},
        {"owner": ""},
        {"priority": -1},
        {"priority": 1.5},
        {"priority": True},
    ])
    def test_invalid_metadata_rejected(self, kwargs):
        with pytest.raises(SweepSpecError):
            SweepSubmission(spec=TINY_SPEC, **kwargs)

    def test_spec_required_and_typed(self):
        with pytest.raises(SweepSpecError):
            SweepSubmission.from_dict({"name": "x"})
        with pytest.raises(SweepSpecError):
            SweepSubmission(spec="not a spec")

    def test_unknown_field_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSubmission.from_dict(
                {"spec": TINY_SPEC.to_dict(), "color": "red"})


class TestServiceRows:
    """The v3 ``kind="service"`` BENCH row family (scheduler counters)."""

    def _service_doc(self, **overrides):
        row = {"label": "smoke", "submissions": 2, "cells_total": 8,
               "hits": 2, "misses": 6, "hit_rate": 0.25,
               "leases_granted": 6, "leases_expired": 0}
        row.update(overrides)
        return make_bench("svc", [row], kind="service")

    def test_service_rows_validate(self):
        doc = self._service_doc()
        assert validate_bench(doc) == doc
        assert doc["schema_version"] == 3

    def test_hits_must_sum_to_cells_total(self):
        with pytest.raises(BenchSchemaError, match="cells_total"):
            self._service_doc(hits=3)

    def test_missing_counter_rejected(self):
        row = {"label": "smoke", "submissions": 1, "cells_total": 1,
               "hits": 0, "misses": 1, "hit_rate": 0.0,
               "leases_granted": 1}
        with pytest.raises(BenchSchemaError):
            make_bench("svc", [row], kind="service")

    def test_service_kind_needs_v3(self):
        doc = self._service_doc()
        doc["schema_version"] = 2
        doc["results_sha256"] = results_digest(doc["results"])
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_bench(doc)
