"""Store integrity: checksum envelopes, quarantine, legacy entries and
the diskcache chaos faults (torn writes, bit rot, ENOSPC)."""

import errno
import os
import pickle

import pytest

from repro import diskcache
from repro.chaos import FaultPlan, FaultRule, activate, deactivate
from repro.diskcache import CHECKSUM_MARKER, PickleDirStore


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    deactivate()
    yield
    deactivate()


def corrupt_counter():
    return diskcache._corrupt_total.value


PAYLOAD = {"rows": list(range(64)), "label": "cell"}


class TestChecksum:
    def test_round_trip(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        store.put("k", PAYLOAD)
        assert store.get("k") == PAYLOAD

    def test_envelope_on_disk(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        store.put("k", PAYLOAD)
        envelope = pickle.loads((tmp_path / "k.pkl").read_bytes())
        assert envelope[0] == CHECKSUM_MARKER
        assert len(envelope) == 3

    def test_bit_rot_is_a_quarantined_miss(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        store.put("k", PAYLOAD)
        raw = bytearray((tmp_path / "k.pkl").read_bytes())
        raw[-10] ^= 0xFF
        (tmp_path / "k.pkl").write_bytes(bytes(raw))
        before = corrupt_counter()
        assert store.get("k") is None
        assert corrupt_counter() == before + 1
        assert not (tmp_path / "k.pkl").exists()
        assert (tmp_path / "k.corrupt").exists()
        assert store.corrupt_keys() == ["k"]

    def test_unpicklable_garbage_is_a_quarantined_miss(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        (tmp_path / "k.pkl").write_bytes(b"not a pickle at all")
        before = corrupt_counter()
        assert store.get("k") is None
        assert corrupt_counter() == before + 1
        assert store.corrupt_keys() == ["k"]

    def test_counter_ticks_even_without_quarantine(self, tmp_path):
        store = PickleDirStore(str(tmp_path), quarantine=False)
        (tmp_path / "k.pkl").write_bytes(b"junk")
        before = corrupt_counter()
        assert store.get("k") is None
        assert corrupt_counter() == before + 1
        # Entry stays in place (and keeps failing) when quarantine is
        # disabled — the operator opted into investigating in situ.
        assert (tmp_path / "k.pkl").exists()
        assert store.corrupt_keys() == []

    def test_legacy_raw_pickle_still_reads(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        (tmp_path / "old.pkl").write_bytes(pickle.dumps(PAYLOAD))
        assert store.get("old") == PAYLOAD

    def test_plain_miss_is_silent(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        before = corrupt_counter()
        assert store.get("absent") is None
        assert corrupt_counter() == before


class TestChaosFaults:
    def test_enospc_raises_oserror(self, tmp_path):
        activate(FaultPlan(seed=1, rules=(
            FaultRule(site="diskcache", fault="enospc",
                      max_injections=1),)))
        store = PickleDirStore(str(tmp_path))
        with pytest.raises(OSError) as excinfo:
            store.put("k", PAYLOAD)
        assert excinfo.value.errno == errno.ENOSPC
        # Budget exhausted: the retry lands.
        store.put("k", PAYLOAD)
        assert store.get("k") == PAYLOAD

    def test_torn_write_plants_reclaimable_orphan(self, tmp_path):
        activate(FaultPlan(seed=1, rules=(
            FaultRule(site="diskcache", fault="torn_write",
                      max_injections=1),)))
        store = PickleDirStore(str(tmp_path))
        store.put("k", PAYLOAD)
        orphans = [name for name in os.listdir(str(tmp_path))
                   if name.endswith(".tmp")]
        assert len(orphans) == 1
        assert diskcache._pid_of_tmp(orphans[0]) == 999999999
        # The entry itself still published atomically.
        assert store.get("k") == PAYLOAD
        # A fresh store open reclaims the dead writer's orphan.
        deactivate()
        PickleDirStore(str(tmp_path))
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".tmp")]

    def test_corrupt_rots_exactly_once(self, tmp_path):
        activate(FaultPlan(seed=1, rules=(
            FaultRule(site="diskcache", fault="corrupt"),)))
        store = PickleDirStore(str(tmp_path))
        store.put("rot", PAYLOAD)
        # The write carried a *good* checksum over rotted bytes: only
        # get-side verification can notice, and it quarantines.
        assert store.get("rot") is None
        assert store.corrupt_keys() == ["rot"]
        # The quarantine file guards the fault: the recompute's put
        # lands clean even with the plan still active.
        store.put("rot", PAYLOAD)
        assert store.get("rot") == PAYLOAD

    def test_no_plan_means_no_faults(self, tmp_path):
        store = PickleDirStore(str(tmp_path))
        for i in range(20):
            store.put("k{}".format(i), PAYLOAD)
        assert all(store.get("k{}".format(i)) == PAYLOAD
                   for i in range(20))
        assert store.corrupt_keys() == []
