"""Shared fixture library for the whole test tree.

Hosts what the per-package test modules used to set up for themselves:

* an ``src`` import-path fallback, so a bare ``pytest`` works even when
  the ``pythonpath`` ini option is unavailable;
* the ``--update-golden`` option for the codegen snapshot tests;
* deterministic RNG seeding, canned topologies, a tiny Figure-15 suite
  instance and its (session-cached) serial outcomes.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.harness import fig15_suite, run_suite
from repro.network.topology import build_topology
from repro.sim.config import SimulationConfig

#: One fixed seed for every deterministic test in the tree.
TEST_SEED = 20260730


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden codegen snapshots instead of comparing")


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng_seed() -> int:
    """The tree-wide deterministic seed."""
    return TEST_SEED


@pytest.fixture
def rng(rng_seed):
    """A deterministic numpy Generator."""
    return np.random.default_rng(rng_seed)


@pytest.fixture
def default_config() -> SimulationConfig:
    """A fresh paper-default SimulationConfig."""
    return SimulationConfig()


@pytest.fixture
def line_topology():
    """Factory for an n-controller line-mesh topology."""
    def build(num_controllers: int, **kwargs):
        return build_topology(num_controllers, mesh_kind="line", **kwargs)
    return build


@pytest.fixture(scope="session")
def tiny_suite():
    """A scale-0.02 Figure-15 suite (seconds, not minutes)."""
    return fig15_suite(scale=0.02)


@pytest.fixture(scope="session")
def tiny_outcomes(tiny_suite):
    """Serial outcomes of the tiny suite, computed once per session."""
    return run_suite(tiny_suite)
