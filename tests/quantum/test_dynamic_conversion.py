"""Static -> dynamic circuit conversion (section 6.4.2 workload prep)."""

import pytest

from repro.circuits import build_bv, build_qft
from repro.circuits.dynamic import (cnot_distance_histogram,
                                    count_feedback_ops, decompose_to_native,
                                    to_dynamic)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import run_statevector


class TestDecompose:
    def test_cp_becomes_rz_cx(self):
        import math
        circuit = QuantumCircuit(2)
        circuit.cp(math.pi / 4, 0, 1)
        native = decompose_to_native(circuit)
        counts = native.count_ops()
        assert counts == {"rz": 3, "cx": 2}

    def test_cp_decomposition_exact(self):
        import math
        import numpy as np
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cp(math.pi / 3, 0, 1)
        reference, _ = run_statevector(circuit)
        native, _ = run_statevector(decompose_to_native(circuit))
        overlap = abs(np.vdot(reference.state, native.state))
        assert overlap == pytest.approx(1.0)

    def test_swap_becomes_three_cx(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        native = decompose_to_native(circuit)
        assert native.count_ops() == {"cx": 3}

    def test_native_ops_pass_through(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(0, 0)
        native = decompose_to_native(circuit)
        assert len(native) == 3


class TestToDynamic:
    def test_adjacent_cx_not_substituted(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        dynamic = to_dynamic(circuit)
        assert dynamic.metadata["num_gadgets"] == 0

    def test_distant_cx_substituted(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        dynamic = to_dynamic(circuit)
        assert dynamic.metadata["num_gadgets"] == 1
        assert dynamic.has_feedback
        assert dynamic.num_qubits == 4 + 2  # bus ancillas appended

    def test_fraction_zero_keeps_static(self):
        dynamic = to_dynamic(build_bv(8), substitution_fraction=0.0)
        assert dynamic.metadata["num_gadgets"] == 0

    def test_bv_stays_correct_after_conversion(self):
        from repro.circuits.bv import secret_of
        n = 7
        dynamic = to_dynamic(build_bv(n), substitution_fraction=1.0)
        for seed in range(3):
            _, cbits = run_statevector(dynamic, seed=seed)
            measured = sum(cbits[i] << i for i in range(n - 1))
            assert measured == secret_of(n)

    def test_qft_stays_correct_after_conversion(self):
        import numpy as np
        static = build_qft(4)
        dynamic = to_dynamic(static, substitution_fraction=1.0, seed=5)
        backend, _ = run_statevector(dynamic, seed=2)
        probs = backend.probabilities().reshape(-1, 1 << 2).sum(axis=0)
        # Bus ancillas are reset to |0>; the QFT register is uniform.
        data_probs = [sum(backend.probabilities()[k]
                          for k in range(1 << 6)
                          if (k & 0b1111) == basis)
                      for basis in range(16)]
        assert data_probs == pytest.approx([1 / 16.0] * 16, abs=1e-9)

    def test_histogram(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1).cx(0, 4).cx(0, 4)
        assert cnot_distance_histogram(circuit) == {1: 1, 4: 2}

    def test_feedback_counter(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        dynamic = to_dynamic(circuit)
        assert count_feedback_ops(dynamic) >= 2  # corrections + resets
