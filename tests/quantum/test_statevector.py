"""Statevector backend: gates, measurement, dynamic execution."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantumStateError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import StatevectorBackend, run_statevector


class TestGates:
    def test_initial_ground_state(self):
        backend = StatevectorBackend(2)
        assert backend.probabilities()[0] == pytest.approx(1.0)

    def test_x_gate(self):
        backend = StatevectorBackend(1)
        backend.apply_gate("x", (0,))
        assert backend.probability_one(0) == pytest.approx(1.0)

    def test_h_gate_half_probability(self):
        backend = StatevectorBackend(1)
        backend.apply_gate("h", (0,))
        assert backend.probability_one(0) == pytest.approx(0.5)

    def test_bell_state(self):
        backend = StatevectorBackend(2)
        backend.apply_gate("h", (0,))
        backend.apply_gate("cx", (0, 1))
        probs = backend.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_cx_control_order(self):
        # control=1, target=0: |01> (q0=1? no: q1 is control)
        backend = StatevectorBackend(2)
        backend.apply_gate("x", (1,))
        backend.apply_gate("cx", (1, 0))
        assert backend.probabilities()[0b11] == pytest.approx(1.0)

    def test_swap(self):
        backend = StatevectorBackend(2)
        backend.apply_gate("x", (0,))
        backend.apply_gate("swap", (0, 1))
        assert backend.probability_one(1) == pytest.approx(1.0)
        assert backend.probability_one(0) == pytest.approx(0.0)

    def test_rotation_angles(self):
        backend = StatevectorBackend(1)
        backend.apply_gate("ry", (0,), (math.pi / 2,))
        assert backend.probability_one(0) == pytest.approx(0.5)

    def test_control_equals_target_rejected(self):
        with pytest.raises(QuantumStateError):
            StatevectorBackend(2).apply_gate("cx", (1, 1))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(QuantumStateError):
            StatevectorBackend(40)


class TestMeasurement:
    def test_deterministic_outcomes(self):
        backend = StatevectorBackend(1)
        assert backend.measure(0) == 0
        backend.apply_gate("x", (0,))
        assert backend.measure(0) == 1

    def test_collapse(self):
        backend = StatevectorBackend(1, seed=42)
        backend.apply_gate("h", (0,))
        outcome = backend.measure(0)
        assert backend.measure(0) == outcome  # collapsed

    def test_forced_outcome(self):
        backend = StatevectorBackend(1)
        backend.apply_gate("h", (0,))
        assert backend.measure(0, forced=1) == 1
        assert backend.probability_one(0) == pytest.approx(1.0)

    def test_forcing_impossible_outcome_rejected(self):
        backend = StatevectorBackend(1)
        with pytest.raises(QuantumStateError):
            backend.measure(0, forced=1)

    def test_bell_correlation(self):
        for seed in range(8):
            backend = StatevectorBackend(2, seed=seed)
            backend.apply_gate("h", (0,))
            backend.apply_gate("cx", (0, 1))
            assert backend.measure(0) == backend.measure(1)

    def test_reset(self):
        backend = StatevectorBackend(1, seed=0)
        backend.apply_gate("x", (0,))
        assert backend.reset(0) == 1
        assert backend.probability_one(0) == pytest.approx(0.0)


class TestDynamicCircuits:
    def test_feedback_branch_taken(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(0).measure(0, 0).x(1, condition=(0, 1))
        backend, cbits = run_statevector(circuit)
        assert cbits == [1]
        assert backend.probability_one(1) == pytest.approx(1.0)

    def test_feedback_branch_skipped(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0).x(1, condition=(0, 1))
        backend, cbits = run_statevector(circuit)
        assert cbits == [0]
        assert backend.probability_one(1) == pytest.approx(0.0)

    def test_forced_outcomes_drive_branches(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).measure(0, 0).x(1, condition=(0, 1))
        backend, cbits = run_statevector(circuit,
                                         forced_outcomes={0: [1]})
        assert cbits == [1]
        assert backend.probability_one(1) == pytest.approx(1.0)

    def test_fidelity_of_identical_states(self):
        a = StatevectorBackend(2)
        b = StatevectorBackend(2)
        for backend in (a, b):
            backend.apply_gate("h", (0,))
            backend.apply_gate("cx", (0, 1))
        assert a.fidelity(b) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states(self):
        a = StatevectorBackend(1)
        b = StatevectorBackend(1)
        b.apply_gate("x", (0,))
        assert a.fidelity(b) == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["h", "x", "s", "t", "sx", "z"]),
                min_size=1, max_size=12),
       st.integers(0, 2))
def test_property_norm_preserved(gates, qubit):
    backend = StatevectorBackend(3, seed=0)
    for gate in gates:
        backend.apply_gate(gate, (qubit,))
    assert np.sum(backend.probabilities()) == pytest.approx(1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_property_measurement_collapses_consistently(seed):
    backend = StatevectorBackend(2, seed=seed)
    backend.apply_gate("h", (0,))
    backend.apply_gate("cx", (0, 1))
    assert backend.measure(0) == backend.measure(1)
