"""Packed (uint64-word) vs byte-per-qubit stabilizer tableau differential.

The packed layout is the default; the uint8 layout is the reference.
Both must draw identically from the RNG and agree on every outcome,
collapse and canonical form — including across the 64-qubit word
boundary (n = 64, 65, 130).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.stabilizer import StabilizerBackend, run_stabilizer
from repro.testing import random_clifford_circuit


def _apply_random_ops(packed, plain, rng, steps):
    outcomes = ([], [])
    n = packed.num_qubits
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.22:
            q = rng.randrange(n)
            packed.h(q)
            plain.h(q)
        elif roll < 0.4:
            q = rng.randrange(n)
            packed.s(q)
            plain.s(q)
        elif roll < 0.62:
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                packed.cx(a, b)
                plain.cx(a, b)
        elif roll < 0.72:
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                packed.cz(a, b)
                plain.cz(a, b)
        elif roll < 0.78:
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                packed.swap(a, b)
                plain.swap(a, b)
        elif roll < 0.9:
            q = rng.randrange(n)
            outcomes[0].append(packed.measure(q))
            outcomes[1].append(plain.measure(q))
        else:
            q = rng.randrange(n)
            outcomes[0].append(packed.reset(q))
            outcomes[1].append(plain.reset(q))
    return outcomes


class TestPackedDifferential:
    @pytest.mark.parametrize("num_qubits", [1, 2, 5, 17, 63, 64, 65, 130])
    def test_random_ops_identical(self, num_qubits):
        rng = random.Random(num_qubits * 7919)
        seed = rng.randrange(1 << 30)
        packed = StabilizerBackend(num_qubits, seed=seed, packed=True)
        plain = StabilizerBackend(num_qubits, seed=seed, packed=False)
        got, want = _apply_random_ops(packed, plain, rng, steps=150)
        assert got == want
        assert packed.canonical_stabilizers() == \
            plain.canonical_stabilizers()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20),
           num_qubits=st.integers(min_value=2, max_value=9))
    def test_random_dynamic_circuits(self, seed, num_qubits):
        circuit = random_clifford_circuit(num_qubits, 40, seed=seed,
                                          feedback=True)
        packed = StabilizerBackend(num_qubits, seed=seed, packed=True)
        plain = StabilizerBackend(num_qubits, seed=seed, packed=False)
        assert packed.run_circuit(circuit) == plain.run_circuit(circuit)
        assert packed.canonical_stabilizers() == \
            plain.canonical_stabilizers()

    def test_rotations_and_paulis(self):
        packed = StabilizerBackend(70, seed=3, packed=True)
        plain = StabilizerBackend(70, seed=3, packed=False)
        for backend in (packed, plain):
            backend.apply_gate("rz", (65,), (np.pi / 2,))
            backend.apply_gate("cp", (1, 66), (np.pi,))
            backend.apply_pauli("XZY", (0, 64, 69))
        assert packed.canonical_stabilizers() == \
            plain.canonical_stabilizers()

    def test_forced_outcomes_agree(self):
        packed = StabilizerBackend(66, seed=11, packed=True)
        plain = StabilizerBackend(66, seed=11, packed=False)
        for backend in (packed, plain):
            backend.h(65)
            assert backend.measure(65, forced=1) == 1
            assert backend.measure(65) == 1  # collapsed
        # Deterministic qubit: forcing the wrong outcome raises on both.
        from repro.errors import QuantumStateError
        for backend in (packed, plain):
            with pytest.raises(QuantumStateError):
                backend.measure(0, forced=1)

    def test_ghz_across_word_boundary(self):
        n = 80
        packed = StabilizerBackend(n, seed=42, packed=True)
        plain = StabilizerBackend(n, seed=42, packed=False)
        for backend in (packed, plain):
            backend.h(0)
            for q in range(1, n):
                backend.cx(q - 1, q)
        a = packed.measure_all()
        b = plain.measure_all()
        assert a == b
        assert set(a) in ({0}, {1})  # GHZ collapses to all-0 or all-1


class TestPackedDefaults:
    def test_default_is_packed(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        assert StabilizerBackend(4).packed is True

    def test_escape_hatch_selects_bytes(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert StabilizerBackend(4).packed is False
        # Explicit request wins over the environment.
        assert StabilizerBackend(4, packed=True).packed is True

    def test_run_stabilizer_facade(self):
        circuit = random_clifford_circuit(5, 30, seed=9, feedback=True)
        backend, cbits = run_stabilizer(circuit, seed=123)
        backend2 = StabilizerBackend(5, seed=123, packed=False)
        assert cbits == backend2.run_circuit(circuit)
        assert backend.canonical_stabilizers() == \
            backend2.canonical_stabilizers()
