"""Long-range CNOT via gate teleportation (Figure 14)."""

import math

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import StatevectorBackend, run_statevector
from repro.quantum.stabilizer import run_stabilizer
from repro.quantum.teleport import (append_long_range_cnot,
                                    build_long_range_cnot_circuit,
                                    build_swap_cnot_circuit,
                                    classical_bits_needed)


def reduced_density(state, n, q0, q1):
    psi = state.reshape([2] * n)
    keep = [n - 1 - q0, n - 1 - q1]
    rest = [a for a in range(n) if a not in keep]
    moved = np.transpose(psi, keep + rest).reshape(4, -1)
    return moved @ moved.conj().T


class TestEquivalence:
    @pytest.mark.parametrize("distance", [1, 2, 3, 4, 5, 6, 8])
    def test_matches_direct_cnot_on_random_inputs(self, distance):
        ancillas = list(range(1, distance))
        n = distance + 1
        for seed in range(4):
            rng = np.random.default_rng(seed)
            th1, th2, phi = rng.uniform(0, math.pi, 3)
            circuit = QuantumCircuit(
                n, classical_bits_needed(len(ancillas)) + 1)
            circuit.ry(th1, 0)
            circuit.rz(phi, 0)
            circuit.ry(th2, distance)
            append_long_range_cnot(circuit, 0, ancillas, distance, 0)
            backend, _ = run_statevector(circuit, seed=100 + seed)
            reference = StatevectorBackend(n)
            reference.apply_gate("ry", (0,), (th1,))
            reference.apply_gate("rz", (0,), (phi,))
            reference.apply_gate("ry", (distance,), (th2,))
            reference.apply_gate("cx", (0, distance))
            got = reduced_density(backend.state, n, 0, distance)
            want = reduced_density(reference.state, n, 0, distance)
            assert np.allclose(got, want, atol=1e-9)

    def test_bell_pair_preparation(self):
        for seed in range(6):
            circuit = build_long_range_cnot_circuit(7)
            backend, _ = run_statevector(circuit, seed=seed)
            assert backend.probability_one(0) == pytest.approx(0.5)
            assert backend.measure(0) == backend.measure(7)

    def test_stabilizer_backend_at_scale(self):
        circuit = build_long_range_cnot_circuit(100)
        backend, _ = run_stabilizer(circuit, seed=9)
        assert backend.measure(0) == backend.measure(100)

    def test_swap_baseline_equivalent(self):
        dynamic = build_long_range_cnot_circuit(5)
        swap = build_swap_cnot_circuit(5)
        b1, _ = run_statevector(dynamic, seed=1)
        b2, _ = run_statevector(swap, seed=1)
        got = reduced_density(b1.state, 6, 0, 5)
        want = reduced_density(b2.state, 6, 0, 5)
        assert np.allclose(got, want, atol=1e-9)


class TestStructure:
    def test_constant_depth_vs_linear(self):
        dyn_depths = [build_long_range_cnot_circuit(d).depth()
                      for d in (8, 16, 32)]
        swap_depths = [build_swap_cnot_circuit(d).depth()
                       for d in (8, 16, 32)]
        # Teleported version grows sublinearly (corrections are a chain of
        # conditional Paulis on two qubits); SWAP ladder is strictly linear.
        assert swap_depths == [16, 32, 64]
        assert dyn_depths[-1] < swap_depths[-1] / 2

    def test_odd_ancilla_count_drops_one(self):
        circuit = QuantumCircuit(6, 10)
        used = append_long_range_cnot(circuit, 0, [1, 2, 3], 5, 0)
        assert used == classical_bits_needed(3) == classical_bits_needed(2)

    def test_classical_bits_accounting(self):
        assert classical_bits_needed(0) == 0
        assert classical_bits_needed(1) == 1
        assert classical_bits_needed(2) == 2
        assert classical_bits_needed(4) == 4
        assert classical_bits_needed(6) == 6

    def test_control_equals_target_rejected(self):
        with pytest.raises(CompilationError):
            append_long_range_cnot(QuantumCircuit(3, 4), 0, [1], 0, 0)

    def test_feedback_present(self):
        circuit = build_long_range_cnot_circuit(5)
        assert circuit.has_feedback
