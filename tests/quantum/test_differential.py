"""Differential-testing backbone for the quantum simulators.

Two independent implementations constrain each other:

* seeded random Clifford circuits must yield the same measurement
  *statistics* on the dense statevector backend and the stabilizer
  (CHP tableau) backend — deterministic bits must agree exactly, random
  bits must agree in distribution;
* batched multi-shot statevector execution must match the per-shot loop
  **bit for bit** under a fixed seed, for static, dynamic and Clifford
  circuits alike.
"""

import numpy as np
import pytest

from repro.quantum.stabilizer import StabilizerBackend
from repro.quantum.statevector import (BatchedStatevectorBackend,
                                       StatevectorBackend,
                                       measurement_counts, run_multishot)
from repro.testing import random_clifford_circuit, random_dynamic_circuit

CLIFFORD_CASES = [(2, 30, 11), (3, 40, 12), (4, 60, 13), (5, 80, 14),
                  (6, 90, 15)]


def _deterministic_bits(circuit, shots, seed):
    """Classical bits that came out identical across every shot."""
    rows = run_multishot(circuit, shots, seed=seed, batched=True)
    same = (rows == rows[0]).all(axis=0)
    return same, rows


class TestStatevectorVsStabilizer:
    """Same Clifford circuit, two formalisms, one distribution."""

    @pytest.mark.parametrize("num_qubits,depth,seed", CLIFFORD_CASES)
    def test_deterministic_bits_agree(self, num_qubits, depth, seed):
        """Bits that are deterministic must match across backends exactly.

        A bit is called deterministic when 64 statevector shots agree on
        it; the stabilizer backend must then produce that same value on
        every one of its shots.
        """
        circuit = random_clifford_circuit(num_qubits, depth, seed)
        assert circuit.is_clifford
        same, rows = _deterministic_bits(circuit, 64, seed=seed)
        reference = rows[0]
        for shot in range(16):
            backend = StabilizerBackend(circuit.num_qubits,
                                        seed=seed * 1000 + shot)
            bits = backend.run_circuit(circuit)
            for b in range(circuit.num_clbits):
                if same[b]:
                    assert bits[b] == reference[b], (
                        "deterministic cbit {} differs on shot {}".format(
                            b, shot))

    @pytest.mark.parametrize("num_qubits,depth,seed", CLIFFORD_CASES[:3])
    def test_marginal_frequencies_agree(self, num_qubits, depth, seed):
        """Per-bit marginals agree within sampling error.

        Clifford measurement probabilities are always 0, 1/2 or 1, so
        400 shots separate the three cases with huge margin (binomial
        std at p=1/2 is ~0.025).
        """
        shots = 400
        circuit = random_clifford_circuit(num_qubits, depth, seed)
        sv = run_multishot(circuit, shots, seed=seed, batched=True)
        st = np.zeros_like(sv)
        for shot in range(shots):
            backend = StabilizerBackend(circuit.num_qubits,
                                        seed=seed * 7919 + shot)
            st[shot] = backend.run_circuit(circuit)
        sv_freq = sv.mean(axis=0)
        st_freq = st.mean(axis=0)
        # Each true marginal is 0, 1/2 or 1: snap both to the grid and
        # require the same cell.
        for b in range(circuit.num_clbits):
            assert abs(sv_freq[b] - st_freq[b]) < 0.15, (
                "cbit {} marginal: sv={:.3f} stab={:.3f}".format(
                    b, sv_freq[b], st_freq[b]))
            snapped_sv = min((0.0, 0.5, 1.0), key=lambda p: abs(p - sv_freq[b]))
            snapped_st = min((0.0, 0.5, 1.0), key=lambda p: abs(p - st_freq[b]))
            assert snapped_sv == snapped_st

    def test_ghz_distribution_exact_shape(self):
        """GHZ: both backends produce only all-zeros / all-ones strings."""
        from repro.circuits.ghz import build_ghz
        circuit = build_ghz(4)
        circuit.num_clbits = 4
        for q in range(4):
            circuit.measure(q, q)
        sv_counts = measurement_counts(
            run_multishot(circuit, 200, seed=3, batched=True))
        assert set(sv_counts) <= {"0000", "1111"}
        st_rows = []
        for shot in range(200):
            backend = StabilizerBackend(4, seed=shot)
            st_rows.append(backend.run_circuit(circuit))
        st_counts = measurement_counts(np.array(st_rows))
        assert set(st_counts) <= {"0000", "1111"}
        for counts in (sv_counts, st_counts):
            assert abs(counts.get("0000", 0) - 100) < 50


class TestBatchedVsShotLoop:
    """The batched (shots, 2**n) path against the reference loop."""

    @pytest.mark.parametrize("num_qubits,depth,seed",
                             [(2, 25, 21), (3, 40, 22), (4, 60, 23),
                              (5, 70, 24)])
    def test_dynamic_circuits_bit_for_bit(self, num_qubits, depth, seed):
        circuit = random_dynamic_circuit(num_qubits, depth, seed)
        batched = run_multishot(circuit, 48, seed=seed, batched=True)
        looped = run_multishot(circuit, 48, seed=seed, batched=False)
        assert np.array_equal(batched, looped)

    @pytest.mark.parametrize("num_qubits,depth,seed", CLIFFORD_CASES[:3])
    def test_clifford_circuits_bit_for_bit(self, num_qubits, depth, seed):
        circuit = random_clifford_circuit(num_qubits, depth, seed)
        batched = run_multishot(circuit, 48, seed=seed, batched=True)
        looped = run_multishot(circuit, 48, seed=seed, batched=False)
        assert np.array_equal(batched, looped)

    def test_teleportation_feedback_bit_for_bit(self):
        """The Figure-14 long-range CNOT gadget, feedback included."""
        from repro.quantum.teleport import build_long_range_cnot_circuit
        circuit = build_long_range_cnot_circuit(5)
        circuit.measure(0, circuit.num_clbits - 2)
        circuit.measure(5, circuit.num_clbits - 1)
        batched = run_multishot(circuit, 64, seed=99, batched=True)
        looped = run_multishot(circuit, 64, seed=99, batched=False)
        assert np.array_equal(batched, looped)

    def test_forced_outcomes_match(self):
        """Forced-FIFO post-selection follows the same semantics."""
        from repro.quantum import QuantumCircuit
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        forced = {0: [1]}
        batched = run_multishot(circuit, 8, seed=5, batched=True,
                                forced_outcomes=forced)
        looped = run_multishot(circuit, 8, seed=5, batched=False,
                               forced_outcomes=forced)
        assert np.array_equal(batched, looped)
        assert (batched[:, 0] == 1).all() and (batched[:, 1] == 1).all()

    def test_states_match_shot_zero(self):
        """Not just bits: shot s's statevector equals the loop backend's."""
        circuit = random_dynamic_circuit(3, 30, seed=31)
        shots = 6
        backend = BatchedStatevectorBackend(3, shots, seed=31)
        backend.run_circuit(circuit)
        from repro.quantum.statevector import _shot_seed
        for s in range(shots):
            single = StatevectorBackend(3, seed=_shot_seed(31, s))
            single.run_circuit(circuit)
            assert np.array_equal(single.state, backend.states[s])

    def test_shot_count_and_dtype(self):
        circuit = random_dynamic_circuit(2, 10, seed=41)
        rows = run_multishot(circuit, 17, seed=0)
        assert rows.shape == (17, circuit.num_clbits)
        assert rows.dtype == np.int8
