"""Stabilizer (CHP) simulator vs statevector cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantumStateError
from repro.quantum.stabilizer import StabilizerBackend
from repro.quantum.statevector import StatevectorBackend


class TestBasics:
    def test_ground_state_measures_zero(self):
        backend = StabilizerBackend(3)
        assert backend.measure_all() == [0, 0, 0]

    def test_x_flips(self):
        backend = StabilizerBackend(1)
        backend.xgate(0)
        assert backend.measure(0) == 1

    def test_h_randomizes(self):
        outcomes = set()
        for seed in range(16):
            backend = StabilizerBackend(1, seed=seed)
            backend.h(0)
            outcomes.add(backend.measure(0))
        assert outcomes == {0, 1}

    def test_measurement_collapses(self):
        backend = StabilizerBackend(1, seed=5)
        backend.h(0)
        first = backend.measure(0)
        assert backend.measure(0) == first

    def test_bell_correlation(self):
        for seed in range(10):
            backend = StabilizerBackend(2, seed=seed)
            backend.h(0)
            backend.cx(0, 1)
            assert backend.measure(0) == backend.measure(1)

    def test_forced_outcome_on_random_measurement(self):
        backend = StabilizerBackend(1, seed=0)
        backend.h(0)
        assert backend.measure(0, forced=1) == 1

    def test_forcing_deterministic_mismatch_rejected(self):
        backend = StabilizerBackend(1)
        with pytest.raises(QuantumStateError):
            backend.measure(0, forced=1)

    def test_non_clifford_rejected(self):
        backend = StabilizerBackend(1)
        with pytest.raises(QuantumStateError):
            backend.apply_gate("t", (0,))

    def test_reset(self):
        backend = StabilizerBackend(1, seed=1)
        backend.h(0)
        backend.reset(0)
        assert backend.measure(0) == 0


class TestDerivedGates:
    def test_z_phase_via_interference(self):
        # HZH = X
        backend = StabilizerBackend(1)
        backend.h(0)
        backend.zgate(0)
        backend.h(0)
        assert backend.measure(0) == 1

    def test_s_squared_is_z(self):
        backend = StabilizerBackend(1)
        backend.h(0)
        backend.s(0)
        backend.s(0)
        backend.h(0)
        assert backend.measure(0) == 1

    def test_cz_equals_h_cx_h(self):
        a = StabilizerBackend(2, seed=0)
        a.h(0)
        a.h(1)
        a.cz(0, 1)
        b = StabilizerBackend(2, seed=0)
        b.h(0)
        b.h(1)
        b.h(1)
        b.cx(0, 1)
        b.h(1)
        assert a.canonical_stabilizers() == b.canonical_stabilizers()

    def test_swap_moves_excitation(self):
        backend = StabilizerBackend(2)
        backend.xgate(0)
        backend.swap(0, 1)
        assert backend.measure_all() == [0, 1]

    def test_y_gate(self):
        backend = StabilizerBackend(1)
        backend.ygate(0)
        assert backend.measure(0) == 1

    def test_rz_multiples_of_half_pi(self):
        import math
        backend = StabilizerBackend(1)
        backend.h(0)
        backend.apply_gate("rz", (0,), (math.pi,))
        backend.h(0)
        assert backend.measure(0) == 1

    def test_cp_pi_is_cz(self):
        import math
        a = StabilizerBackend(2, seed=0)
        a.h(0)
        a.h(1)
        a.apply_gate("cp", (0, 1), (math.pi,))
        b = StabilizerBackend(2, seed=0)
        b.h(0)
        b.h(1)
        b.cz(0, 1)
        assert a.canonical_stabilizers() == b.canonical_stabilizers()


class TestCanonicalStabilizers:
    def test_ground_state_form(self):
        backend = StabilizerBackend(2)
        assert backend.canonical_stabilizers() == ["+ZI", "+IZ"]

    def test_gate_order_invariance(self):
        a = StabilizerBackend(3, seed=0)
        a.h(0)
        a.cx(0, 1)
        a.cx(1, 2)
        b = StabilizerBackend(3, seed=0)
        b.h(0)
        b.cx(0, 1)
        b.cx(0, 2)  # GHZ via different wiring
        assert a.canonical_stabilizers() == b.canonical_stabilizers()

    def test_distinguishes_states(self):
        a = StabilizerBackend(1)
        b = StabilizerBackend(1)
        b.xgate(0)
        assert a.canonical_stabilizers() != b.canonical_stabilizers()

    def test_sign_tracked(self):
        backend = StabilizerBackend(1)
        backend.xgate(0)
        assert backend.canonical_stabilizers() == ["-Z"]


class TestScale:
    def test_large_ghz(self):
        backend = StabilizerBackend(300, seed=2)
        backend.h(0)
        for q in range(299):
            backend.cx(q, q + 1)
        bits = backend.measure_all()
        assert len(set(bits)) == 1


_1Q = ["h", "s", "sdg", "x", "y", "z", "sx"]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_matches_statevector(seed):
    """Random 4-qubit Clifford circuits agree with the dense simulator."""
    rng = np.random.default_rng(seed)
    n = 4
    stab = StabilizerBackend(n, seed=7)
    dense = StatevectorBackend(n, seed=7)
    for _ in range(30):
        if rng.random() < 0.7:
            gate = _1Q[rng.integers(len(_1Q))]
            q = int(rng.integers(n))
            stab.apply_gate(gate, (q,))
            dense.apply_gate(gate, (q,))
        else:
            gate = ["cx", "cz", "swap"][rng.integers(3)]
            a, b = map(int, rng.choice(n, 2, replace=False))
            stab.apply_gate(gate, (a, b))
            dense.apply_gate(gate, (a, b))
    for q in range(n):
        p1 = dense.probability_one(q)
        outcome = dense.measure(q)
        if p1 < 1e-9 or p1 > 1 - 1e-9:
            assert stab.measure(q) == outcome
        else:
            assert stab.measure(q, forced=outcome) == outcome
