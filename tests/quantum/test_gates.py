"""Gate matrices and Clifford classification."""

import math

import numpy as np
import pytest

from repro.errors import QuantumStateError
from repro.quantum.gates import gate_arity, gate_matrix, is_clifford


class TestMatrices:
    def test_all_fixed_gates_unitary(self):
        for name in ("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
                     "cx", "cz", "swap"):
            matrix = gate_matrix(name)
            identity = np.eye(matrix.shape[0])
            assert np.allclose(matrix @ matrix.conj().T, identity), name

    def test_x_flips(self):
        assert np.allclose(gate_matrix("x") @ [1, 0], [0, 1])

    def test_h_makes_plus(self):
        plus = gate_matrix("h") @ [1, 0]
        assert np.allclose(plus, [1 / math.sqrt(2)] * 2)

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squared_is_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_rz_pi_is_z_up_to_phase(self):
        rz = gate_matrix("rz", (math.pi,))
        z = gate_matrix("z")
        phase = rz[0, 0] / z[0, 0]
        assert np.allclose(rz, phase * z)

    def test_rx_pi_is_x_up_to_phase(self):
        rx = gate_matrix("rx", (math.pi,))
        assert np.allclose(rx / (-1j), gate_matrix("x"))

    def test_cp_pi_is_cz(self):
        assert np.allclose(gate_matrix("cp", (math.pi,)), gate_matrix("cz"))

    def test_unknown_gate_rejected(self):
        with pytest.raises(QuantumStateError):
            gate_matrix("nonsense")


class TestArity:
    def test_one_qubit(self):
        assert gate_arity("h") == 1
        assert gate_arity("rz") == 1

    def test_two_qubit(self):
        assert gate_arity("cx") == 2
        assert gate_arity("cp") == 2

    def test_unknown(self):
        with pytest.raises(QuantumStateError):
            gate_arity("ccx")


class TestCliffordness:
    def test_clifford_gates(self):
        for name in ("h", "s", "x", "cz", "cx", "swap", "sx"):
            assert is_clifford(name)

    def test_non_clifford(self):
        assert not is_clifford("t")
        assert not is_clifford("tdg")

    def test_rz_quarter_turns_clifford(self):
        assert is_clifford("rz", (math.pi / 2,))
        assert is_clifford("rz", (math.pi,))
        assert not is_clifford("rz", (math.pi / 3,))

    def test_cp_full_pi_only(self):
        assert is_clifford("cp", (math.pi,))
        assert not is_clifford("cp", (math.pi / 2,))  # CS is not Clifford
