"""OpenQASM 2 subset: emit/parse roundtrips."""

import math

import pytest

from repro.errors import CompilationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.qasm import from_qasm, to_qasm
from repro.quantum.teleport import build_long_range_cnot_circuit


class TestEmit:
    def test_header_and_registers(self):
        text = to_qasm(QuantumCircuit(3, 2))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "creg c[2];" in text

    def test_gates_and_measure(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(1, 0)
        text = to_qasm(circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[1] -> c[0];" in text

    def test_conditional(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0, condition=(0, 1))
        assert "if (c[0]==1) x q[0];" in to_qasm(circuit)

    def test_params(self):
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 4, 0)
        assert "rz(" in to_qasm(circuit)


class TestParse:
    def test_roundtrip_simple(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == 2
        assert [op.name for op in parsed] == ["h", "cx", "measure",
                                              "measure"]

    def test_roundtrip_dynamic(self):
        circuit = build_long_range_cnot_circuit(4)
        parsed = from_qasm(to_qasm(circuit))
        assert len(parsed) == len(circuit)
        assert parsed.has_feedback

    def test_roundtrip_preserves_conditions(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0).z(1, condition=(0, 1))
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.operations[1].condition == (0, 1)

    def test_parse_pi_expressions(self):
        parsed = from_qasm(
            'OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\n')
        assert parsed.operations[0].params[0] == pytest.approx(math.pi / 2)

    def test_parse_barrier_and_reset(self):
        parsed = from_qasm(
            'OPENQASM 2.0;\nqreg q[2];\nbarrier q[0],q[1];\nreset q[0];\n')
        assert parsed.operations[0].is_barrier
        assert parsed.operations[1].is_reset

    def test_missing_qreg_rejected(self):
        with pytest.raises(CompilationError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_evil_parameter_expression_rejected(self):
        with pytest.raises(CompilationError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n')
