"""Circuit IR construction and analysis."""

import pytest

from repro.errors import QuantumStateError
from repro.quantum.circuit import Operation, QuantumCircuit


class TestConstruction:
    def test_gate_append(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert len(circuit) == 2

    def test_qubit_range_checked(self):
        with pytest.raises(QuantumStateError):
            QuantumCircuit(2).h(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(QuantumStateError):
            QuantumCircuit(2).cx(1, 1)

    def test_arity_checked(self):
        with pytest.raises(QuantumStateError):
            QuantumCircuit(2).gate("cx", 0)

    def test_measure_needs_valid_cbit(self):
        with pytest.raises(QuantumStateError):
            QuantumCircuit(2, 1).measure(0, 5)

    def test_condition_bit_checked(self):
        with pytest.raises(QuantumStateError):
            QuantumCircuit(2, 1).x(0, condition=(3, 1))

    def test_conditioned_on_helper(self):
        op = Operation("x", (0,)).conditioned_on(2)
        assert op.condition == (2, 1)

    def test_reset_and_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.reset_qubit(0)
        circuit.barrier()
        assert circuit.operations[0].is_reset
        assert circuit.operations[1].is_barrier


class TestAnalysis:
    def test_has_feedback(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).measure(0, 0)
        assert not circuit.has_feedback
        circuit.x(1, condition=(0, 1))
        assert circuit.has_feedback

    def test_is_clifford(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).s(1)
        assert circuit.is_clifford
        circuit.t(0)
        assert not circuit.is_clifford

    def test_count_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1)
        assert circuit.count_ops() == {"h": 2, "cx": 1}

    def test_two_qubit_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cz(1, 2)
        assert len(circuit.two_qubit_ops()) == 2

    def test_depth_serial(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).h(0)
        assert circuit.depth() == 3

    def test_depth_parallel(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_with_entangler(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_barrier_joins_levels(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        assert circuit.depth() == 2

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1

    def test_str_summary(self):
        circuit = QuantumCircuit(2, 1, name="demo")
        circuit.h(0).measure(0, 0).x(1, condition=(0, 1))
        text = str(circuit)
        assert "demo" in text and "if c0==1" in text
