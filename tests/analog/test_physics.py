"""Closed-form qubit response models."""

import math

import numpy as np
import pytest

from repro.analog.qubit_physics import QubitModel


class TestRabi:
    def test_zero_amplitude_no_excitation(self):
        assert QubitModel().rabi_probability(0.0, 20.0) == 0.0

    def test_pi_pulse_full_excitation(self):
        qubit = QubitModel(rabi_mhz_per_amp=12.5)
        amp_pi = 1000.0 / (2 * 12.5 * 20.0)
        assert qubit.rabi_probability(amp_pi, 20.0) == pytest.approx(1.0)

    def test_detuning_reduces_contrast(self):
        qubit = QubitModel()
        on_res = qubit.rabi_probability(1.0, 200.0)
        detuned_peak = max(
            qubit.rabi_probability(1.0, t, qubit.frequency_ghz + 0.05)
            for t in np.linspace(1, 400, 200))
        assert detuned_peak < 0.2

    def test_lineshape_peaks_at_resonance(self):
        qubit = QubitModel()
        freqs = np.linspace(qubit.frequency_ghz - 0.02,
                            qubit.frequency_ghz + 0.02, 41)
        response = [qubit.rabi_probability(0.1, 400.0, f) for f in freqs]
        assert abs(freqs[int(np.argmax(response))] -
                   qubit.frequency_ghz) < 1e-3


class TestRelaxation:
    def test_t1_decay_exponential(self):
        qubit = QubitModel(t1_us=10.0)
        assert qubit.t1_decay(1.0, 10_000.0) == pytest.approx(math.exp(-1))

    def test_no_decay_at_zero_delay(self):
        assert QubitModel().t1_decay(0.7, 0.0) == pytest.approx(0.7)


class TestReadout:
    def test_circle_rotation(self):
        qubit = QubitModel(readout_noise=0.0, feedline_interference=0.0)
        rng = np.random.default_rng(0)
        iq0, _ = qubit.readout_iq(0.0, 0.0, rng=rng, sample_state=False)
        iq90, _ = qubit.readout_iq(0.0, math.pi / 2, rng=rng,
                                   sample_state=False)
        assert iq0 == pytest.approx(qubit.iq_ground)
        assert iq90 == pytest.approx(qubit.iq_ground * 1j)

    def test_interference_distorts_circle(self):
        qubit = QubitModel(readout_noise=0.0, feedline_interference=0.1)
        rng = np.random.default_rng(0)
        radii = []
        for k in range(16):
            iq, _ = qubit.readout_iq(0.0, 2 * math.pi * k / 16, rng=rng,
                                     sample_state=False)
            radii.append(abs(iq))
        assert max(radii) - min(radii) > 0.05  # not an ideal circle

    def test_state_sampling_probability(self):
        qubit = QubitModel(readout_noise=0.0)
        rng = np.random.default_rng(1)
        states = [qubit.readout_iq(0.8, 0.0, rng=rng)[1]
                  for _ in range(500)]
        assert sum(states) / 500 == pytest.approx(0.8, abs=0.07)

    def test_discrimination(self):
        qubit = QubitModel()
        assert qubit.discriminate(qubit.iq_ground) == 0
        assert qubit.discriminate(qubit.iq_excited) == 1
