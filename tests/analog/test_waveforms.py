"""Waveform primitives: envelopes, NCO, IQ chain."""

import math

import numpy as np
import pytest

from repro.analog.waveforms import (NCO, gaussian_envelope, iq_demodulate,
                                    iq_modulate, square_envelope)
from repro.errors import ReproError


class TestEnvelopes:
    def test_gaussian_length_and_peak(self):
        env = gaussian_envelope(40.0, amplitude=0.5)
        assert len(env) == 40
        assert env.max() == pytest.approx(0.5, rel=1e-2)

    def test_gaussian_symmetry(self):
        env = gaussian_envelope(21.0)
        assert np.allclose(env, env[::-1])

    def test_square_flat_top(self):
        env = square_envelope(20.0, amplitude=0.8)
        assert np.allclose(env, 0.8)

    def test_square_with_rise(self):
        env = square_envelope(20.0, amplitude=1.0, rise_ns=5.0)
        assert env[0] < 0.5
        assert env[10] == pytest.approx(1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ReproError):
            gaussian_envelope(0.0)


class TestNCO:
    def test_phase_wraps(self):
        nco = NCO()
        nco.set_phase(2 * math.pi + 0.25)
        assert nco.phase_rad == pytest.approx(0.25)

    def test_samples_unit_magnitude(self):
        nco = NCO(0.1, 0.3)
        samples = nco.samples(64)
        assert np.allclose(np.abs(samples), 1.0)

    def test_frequency_advances_phase(self):
        nco = NCO(0.25)  # quarter cycle per ns
        samples = nco.samples(5)
        assert samples[4] == pytest.approx(samples[0], abs=1e-9)


class TestIQChain:
    def test_modulate_demodulate_recovers_mean(self):
        nco = NCO(0.05, 0.7)
        env = square_envelope(100.0, amplitude=0.6)
        signal = iq_modulate(env, nco)
        point = iq_demodulate(signal, nco)
        assert point == pytest.approx(0.6, abs=1e-9)

    def test_demodulation_phase_sensitivity(self):
        tx = NCO(0.05, 0.0)
        rx = NCO(0.05, math.pi)  # opposite reference phase
        env = square_envelope(100.0)
        point = iq_demodulate(iq_modulate(env, tx), rx)
        assert point.real == pytest.approx(-1.0, abs=1e-9)

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError):
            iq_demodulate(np.array([]), NCO())
