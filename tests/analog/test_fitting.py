"""Curve fits used by the calibration experiments."""

import math

import numpy as np
import pytest

from repro.analog.fitting import (fit_circle, fit_exponential_decay,
                                  fit_lorentzian, fit_rabi)
from repro.errors import CalibrationError


class TestFits:
    def test_lorentzian_recovers_center(self):
        f = np.linspace(4.0, 4.2, 61)
        y = 0.9 * 0.01**2 / ((f - 4.13)**2 + 0.01**2) + 0.02
        fit = fit_lorentzian(f, y)
        assert fit.center_ghz == pytest.approx(4.13, abs=1e-4)
        assert fit.width_ghz == pytest.approx(0.01, rel=0.05)

    def test_lorentzian_needs_points(self):
        with pytest.raises(CalibrationError):
            fit_lorentzian([1, 2], [0, 1])

    def test_rabi_recovers_pi_amplitude(self):
        a = np.linspace(0, 3, 61)
        y = 0.95 * np.sin(math.pi * a / (2 * 1.2))**2 + 0.03
        fit = fit_rabi(a, y)
        assert fit.pi_amplitude == pytest.approx(1.2, rel=0.02)

    def test_exponential_recovers_t1(self):
        t = np.linspace(0, 40_000, 41)
        y = 0.9 * np.exp(-t / 9_900.0) + 0.05
        fit = fit_exponential_decay(t, y)
        assert fit.t1_us == pytest.approx(9.9, rel=0.02)

    def test_circle_fit(self):
        theta = np.linspace(0, 2 * math.pi, 36, endpoint=False)
        points = 0.2 + 0.1j + 1.5 * np.exp(1j * theta)
        fit = fit_circle(points)
        assert fit.center == pytest.approx(0.2 + 0.1j, abs=1e-9)
        assert fit.radius == pytest.approx(1.5, abs=1e-9)
        assert fit.rms_deviation == pytest.approx(0.0, abs=1e-9)

    def test_circle_fit_reports_deviation(self):
        theta = np.linspace(0, 2 * math.pi, 36, endpoint=False)
        points = np.exp(1j * theta) + 0.08 * np.exp(3j * theta)
        fit = fit_circle(points)
        assert fit.rms_deviation > 0.01
