"""Full-stack calibration experiments (Figure 11)."""

import pytest

from repro.analog import CalibrationBench, QubitModel


@pytest.fixture(scope="module")
def bench():
    return CalibrationBench(seed=3)


class TestCalibration:
    def test_draw_circle(self, bench):
        result = bench.draw_circle(num_points=24)
        assert len(result.iq) == 24
        assert result.fit.radius == pytest.approx(1.0, abs=0.1)
        # The feedline interference makes the circle measurably non-ideal.
        assert result.fit.rms_deviation > 0.01

    def test_spectroscopy_finds_resonance(self, bench):
        result = bench.spectroscopy(num_points=21)
        assert result.fit.center_ghz == pytest.approx(
            bench.qubit.frequency_ghz, abs=0.002)

    def test_rabi_finds_pi_amplitude(self, bench):
        result = bench.rabi(num_points=41, max_amplitude=2.5)
        assert result.fit.pi_amplitude == pytest.approx(
            bench.pi_amplitude(), rel=0.1)

    def test_t1_matches_model(self, bench):
        result = bench.t1(num_points=15)
        assert result.fit.t1_us == pytest.approx(bench.qubit.t1_us,
                                                 rel=0.15)

    def test_experiments_run_through_hisq_stack(self):
        """The programs must actually exercise sync + codewords."""
        bench = CalibrationBench(seed=1)
        records = bench._run_point(
            control_actions=[],
            readout_actions=[],
            sample_state=False, point_seed=1)
        assert records == []  # no acquisition, but the run completed

    def test_custom_qubit_model(self):
        qubit = QubitModel(frequency_ghz=5.0, t1_us=20.0)
        bench = CalibrationBench(qubit=qubit, seed=2)
        result = bench.spectroscopy(num_points=15)
        assert result.fit.center_ghz == pytest.approx(5.0, abs=0.003)
