"""Compiled sync plans: bit-identity with the router cascade, gating."""

import pytest

from repro.compiler import compile_circuit, run_circuit
from repro.isa import assemble
from repro.network.sync_plan import (build_sync_plan_group,
                                     reset_sync_plan_totals,
                                     sync_plan_totals)
from repro.quantum import QuantumCircuit
from repro.sim import ControlSystem


def _region_system(members, syncs=3, record_telf=False):
    """A quiet (TELF-off) system where ``members`` region-sync
    ``syncs`` times; spans two leaf routers when members straddle the
    fanout boundary."""
    system = ControlSystem(20, mesh_kind="line", record_telf=record_telf,
                           record_gate_log=False)
    system.register_sync_group(40, members)
    for address in members:
        program = assemble("sync 40,1\nwaiti 1\n" * syncs + "halt")
        system.load_program(address, program)
    return system


def _run_region(members, monkeypatch, no_plan, syncs=3):
    if no_plan:
        monkeypatch.setenv("REPRO_NO_SYNC_PLAN", "1")
    else:
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
    system = _region_system(members, syncs=syncs)
    stats = system.run()
    return system, stats


class TestPlanMatchesCascade:
    @pytest.mark.parametrize("members", [[0, 1], [0, 19], [0, 9, 19]])
    def test_timing_identical(self, members, monkeypatch):
        plan_sys, plan_stats = _run_region(members, monkeypatch,
                                           no_plan=False)
        fall_sys, fall_stats = _run_region(members, monkeypatch,
                                           no_plan=True)
        assert plan_sys._sync_plan_active is True
        assert fall_sys._sync_plan_active is False
        assert plan_sys.sync_plan_resolved == 3
        assert fall_sys.sync_plan_resolved == 0
        for address in members:
            plan_core = plan_sys.cores[address]
            fall_core = fall_sys.cores[address]
            assert plan_core.last_event_time == fall_core.last_event_time
            assert plan_core.counters() == fall_core.counters()
            assert plan_core.sync_unit.tm_received == \
                fall_core.sync_unit.tm_received

    @pytest.mark.parametrize("members", [[0, 19], [0, 9, 19]])
    def test_router_diagnostics_stay_in_step(self, members, monkeypatch):
        """The plan books nothing through the routers, but their
        bookings/broadcast counters must still read as if it had —
        otherwise fleet dashboards silently flatline under the plan."""
        plan_sys, _ = _run_region(members, monkeypatch, no_plan=False)
        fall_sys, _ = _run_region(members, monkeypatch, no_plan=True)
        for address, router in plan_sys.routers.items():
            other = fall_sys.routers[address]
            assert router.bookings_handled == other.bookings_handled
            assert router.broadcasts_sent == other.broadcasts_sent

    def test_counters_move(self, monkeypatch):
        reset_sync_plan_totals()
        _run_region([0, 19], monkeypatch, no_plan=False)
        assert sync_plan_totals() == {"resolved": 3, "fallback": 0}
        reset_sync_plan_totals()
        _run_region([0, 19], monkeypatch, no_plan=True)
        assert sync_plan_totals()["resolved"] == 0
        assert sync_plan_totals()["fallback"] == 3


class TestGating:
    def test_env_hatch_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SYNC_PLAN", "1")
        system = _region_system([0, 19])
        system.run()
        assert system._sync_plan_active is False

    def test_no_fastpath_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        system = _region_system([0, 19])
        system.run()
        assert system._sync_plan_active is False

    def test_telf_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        system = _region_system([0, 19], record_telf=True)
        system.run()
        assert system._sync_plan_active is False

    def test_recv_program_disables(self, monkeypatch):
        """Any recv-bearing program keeps the dynamic routers — message
        interleaving is observable through feedback."""
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        system = _region_system([0, 19])
        system.load_program(1, assemble("send.i 2,7\nhalt"))
        system.load_program(2, assemble("recv $5,1\nhalt"))
        system.run()
        assert system._sync_plan_active is False

    def test_backend_and_gate_log_disable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        system = _region_system([0, 19])
        system.device.record_gate_log = True
        assert system._sync_plans_applicable() is False
        system.device.record_gate_log = False
        system.device.backend = object()
        assert system._sync_plans_applicable() is False
        system.device.backend = None
        assert system._sync_plans_applicable() is True

    def test_no_groups_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        system = ControlSystem(4, mesh_kind="line", record_telf=False)
        system.load_program(0, assemble("halt"))
        system.run()
        assert system._sync_plan_active is False


class TestPlanArithmetic:
    def test_levels_and_delays(self):
        """Compiled delays equal the cascade's per-hop sums on the real
        tree topology."""
        system = ControlSystem(20, mesh_kind="line", record_telf=False)
        topology = system.topology
        members = [0, 9, 19]
        target = topology.common_ancestor(members)
        hop = system.config.router_hop_cycles
        process = system.config.router_process_cycles
        plan = build_sync_plan_group(40, members, target, topology,
                                     hop, process, down_bound=11)
        for member in members:
            depth = len(topology.path_to_ancestor(member, target)) - 1
            assert plan.up_delay[member] == \
                depth * hop + (depth - 1) * process
        delays = [delay for delay, _ in plan.levels]
        assert delays == sorted(delays)
        delivered = [m for _, addrs in plan.levels for m in addrs]
        assert sorted(delivered) == members
        assert plan.down_bound == 11


class TestCompiledCircuits:
    def test_region_sync_circuit_identical(self, monkeypatch):
        """A compiled circuit with long-range CNOTs (region sync groups,
        no feedback) runs bit-identically with and without the plan."""
        circuit = QuantumCircuit(12)
        for _ in range(2):
            circuit.cx(0, 11)
            circuit.cx(3, 9)
        compilation = compile_circuit(circuit, mesh_kind="line")
        assert compilation.sync_groups

        monkeypatch.delenv("REPRO_NO_SYNC_PLAN", raising=False)
        plan_run = run_circuit(circuit, mesh_kind="line", device_seed=5,
                               record_gate_log=False, record_telf=False,
                               compilation=compilation)
        monkeypatch.setenv("REPRO_NO_SYNC_PLAN", "1")
        fall_run = run_circuit(circuit, mesh_kind="line", device_seed=5,
                               record_gate_log=False, record_telf=False,
                               compilation=compilation)
        assert plan_run.makespan_cycles == fall_run.makespan_cycles
        assert plan_run.stats.sync_stall_cycles == \
            fall_run.stats.sync_stall_cycles
        assert plan_run.system.device.lifetimes_ns() == \
            fall_run.system.device.lifetimes_ns()
        assert plan_run.system.sync_plan_resolved > 0
        assert fall_run.system.sync_plan_resolved == 0
