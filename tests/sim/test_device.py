"""Quantum-device bridge: gate halves, skew, measurement delivery."""

import pytest

from repro.core.config import ACQ_ADDRESS
from repro.quantum.statevector import StatevectorBackend
from repro.sim.config import SimulationConfig
from repro.sim.device import GateAction, MarkerAction, MeasureAction, QuantumDevice
from repro.sim.engine import Engine
from repro.sim.telf import TelfLog


class FakeCore:
    def __init__(self):
        self.messages = []

    def deliver_message(self, source, value):
        self.messages.append((source, value))


def make_device(backend=None, seed=1):
    engine = Engine()
    device = QuantumDevice(engine, TelfLog(), SimulationConfig(),
                           backend=backend, seed=seed)
    return engine, device


class TestGateActions:
    def test_full_gate_applied(self):
        backend = StatevectorBackend(1, seed=0)
        engine, device = make_device(backend)
        device.handle(FakeCore(), GateAction("x", (0,)))
        assert backend.probability_one(0) == pytest.approx(1.0)

    def test_marker_is_noop(self):
        engine, device = make_device()
        device.handle(FakeCore(), MarkerAction("trig"))
        assert device.gates_applied == 0

    def test_halves_applied_when_both_arrive(self):
        backend = StatevectorBackend(2, seed=0)
        backend.apply_gate("x", (0,))
        engine, device = make_device(backend)
        device.handle(FakeCore(), GateAction("cx", (0, 1), half=0,
                                             total_halves=2))
        assert backend.probability_one(1) == pytest.approx(0.0)
        device.handle(FakeCore(), GateAction("cx", (0, 1), half=1,
                                             total_halves=2))
        assert backend.probability_one(1) == pytest.approx(1.0)

    def test_skew_recorded(self):
        engine, device = make_device()
        device.handle(FakeCore(), GateAction("cz", (0, 1), half=0,
                                             total_halves=2))
        engine.at(7, lambda: device.handle(
            FakeCore(), GateAction("cz", (0, 1), half=1, total_halves=2)))
        engine.run()
        assert device.gate_skew_events == 1
        assert device.max_gate_skew == 7

    def test_zero_skew_not_counted(self):
        engine, device = make_device()
        device.handle(FakeCore(), GateAction("cz", (0, 1), half=0,
                                             total_halves=2))
        device.handle(FakeCore(), GateAction("cz", (0, 1), half=1,
                                             total_halves=2))
        assert device.gate_skew_events == 0
        assert device.pending_half_count == 0

    def test_repeated_instances_pair_fifo(self):
        engine, device = make_device()
        # Two instances of the same gate: halves pair in program order.
        device.handle(FakeCore(), GateAction("cz", (0, 1), half=0,
                                             total_halves=2))
        engine.at(3, lambda: device.handle(
            FakeCore(), GateAction("cz", (0, 1), half=0, total_halves=2)))
        engine.at(5, lambda: device.handle(
            FakeCore(), GateAction("cz", (0, 1), half=1, total_halves=2)))
        engine.at(8, lambda: device.handle(
            FakeCore(), GateAction("cz", (0, 1), half=1, total_halves=2)))
        engine.run()
        assert device.gates_applied == 2
        assert device.gate_skew_events == 2
        assert device.max_gate_skew == 5
        assert device.pending_half_count == 0


class TestMeasurement:
    def test_result_delivered_after_duration(self):
        engine, device = make_device()
        core = FakeCore()
        device.force_outcome(0, 1)
        device.handle(core, MeasureAction(0))
        assert core.messages == []  # not yet: takes 75 cycles (300 ns)
        engine.run()
        assert core.messages == [(ACQ_ADDRESS, 1)]
        assert engine.now == SimulationConfig().measurement_cycles

    def test_forced_outcomes_fifo(self):
        engine, device = make_device()
        core = FakeCore()
        device.force_outcome(0, 1, 0, 1)
        for _ in range(3):
            device.handle(core, MeasureAction(0))
        engine.run()
        assert [v for _, v in core.messages] == [1, 0, 1]

    def test_backend_collapse(self):
        backend = StatevectorBackend(1, seed=3)
        engine, device = make_device(backend)
        backend.apply_gate("h", (0,))
        core = FakeCore()
        device.handle(core, MeasureAction(0))
        engine.run()
        outcome = core.messages[0][1]
        assert backend.probability_one(0) == pytest.approx(float(outcome))

    def test_timing_only_mode_seeded(self):
        engine1, device1 = make_device(seed=9)
        engine2, device2 = make_device(seed=9)
        core1, core2 = FakeCore(), FakeCore()
        for device, core, engine in ((device1, core1, engine1),
                                     (device2, core2, engine2)):
            for _ in range(8):
                device.handle(core, MeasureAction(0))
            engine.run()
        assert core1.messages == core2.messages


class TestActivityTracking:
    def test_lifetime_window(self):
        engine, device = make_device()
        core = FakeCore()
        device.handle(core, GateAction("x", (0,)))
        engine.at(100, lambda: device.handle(core, MeasureAction(0)))
        engine.run()
        config = SimulationConfig()
        expected = (100 + config.measurement_cycles) * config.cycle_ns
        assert device.lifetimes_ns()[0] == pytest.approx(expected)

    def test_gate_log_records(self):
        engine, device = make_device()
        device.handle(FakeCore(), GateAction("h", (2,)))
        assert device.gate_log == [(0, "h", (2,))]
