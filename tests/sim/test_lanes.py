"""Unit tests for the lane engine (:mod:`repro.sim.lanes`).

End-to-end lane/replay equivalence lives in
tests/core/test_replay_tiers.py; this file covers the building blocks:
static-timing detection, memoization, fast-forward stat fan-out, seed
derivation, and the counters.
"""

import pytest

from repro.compiler.driver import (compile_circuit, run_circuit,
                                   shot_device_seed)
from repro.quantum.circuit import QuantumCircuit
from repro.sim import lanes


def _static_circuit():
    """No measurements: `measure` lowers to a `recv` from the
    acquisition unit, which (conservatively) marks timing dynamic."""
    circuit = QuantumCircuit(3, 3, name="static")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.h(2)
    circuit.cx(0, 2)
    return circuit


def _feedback_circuit():
    circuit = QuantumCircuit(3, 3, name="feedback")
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.x(1, condition=(0, 1))
    circuit.cx(1, 2)
    circuit.measure(1, 1)
    circuit.measure(2, 2)
    return circuit


class TestStaticTiming:
    def test_static_circuit_detected(self):
        assert lanes.static_timing(compile_circuit(_static_circuit()))

    def test_feedback_circuit_not_static(self):
        assert not lanes.static_timing(compile_circuit(_feedback_circuit()))

    def test_measurement_alone_not_static(self):
        """Even unconditioned measurement reads the acquisition unit via
        recv; the conservative scan refuses to fast-forward it."""
        circuit = QuantumCircuit(2, 2, name="measured")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        assert not lanes.static_timing(compile_circuit(circuit))

    def test_result_memoized_on_compilation(self):
        compilation = compile_circuit(_static_circuit())
        assert not hasattr(compilation, "_lanes_static")
        first = lanes.static_timing(compilation)
        assert compilation._lanes_static is first
        compilation.programs = {}  # would change a fresh scan's answer
        assert lanes.static_timing(compilation) is first


class TestRunExtraShots:
    def test_single_shot_is_empty(self):
        compilation = compile_circuit(_static_circuit())
        rest, mode = lanes.run_extra_shots(compilation, 1234, 1)
        assert rest == []

    def test_fastforward_fans_out_reference(self):
        compilation = compile_circuit(_static_circuit())
        first = {"device_seed": 1234, "makespan_cycles": 777,
                 "sync_stall_cycles": 42}
        rest, mode = lanes.run_extra_shots(compilation, 1234, 4,
                                           first=first)
        assert mode == "fastforward"
        assert [s["makespan_cycles"] for s in rest] == [777, 777, 777]
        assert [s["sync_stall_cycles"] for s in rest] == [42, 42, 42]
        assert [s["device_seed"] for s in rest] == \
               [shot_device_seed(1234, s) for s in (1, 2, 3)]

    def test_fastforward_matches_real_replay(self, monkeypatch):
        compilation = compile_circuit(_static_circuit())
        fast, fast_mode = lanes.run_extra_shots(compilation, 1234, 3)
        monkeypatch.setenv("REPRO_NO_LANES", "1")
        slow, slow_mode = lanes.run_extra_shots(compilation, 1234, 3)
        assert (fast_mode, slow_mode) == ("fastforward", "replay")
        assert fast == slow

    def test_dynamic_compilation_replays(self):
        compilation = compile_circuit(_feedback_circuit())
        rest, mode = lanes.run_extra_shots(compilation, 1234, 3)
        assert mode == "replay"
        assert len(rest) == 2
        assert all(s["makespan_cycles"] > 0 for s in rest)

    def test_counters(self):
        lanes.reset_lane_totals()
        first = {"device_seed": 1, "makespan_cycles": 1,
                 "sync_stall_cycles": 0}
        lanes.run_extra_shots(compile_circuit(_static_circuit()), 1, 5,
                              first=first)
        lanes.run_extra_shots(compile_circuit(_feedback_circuit()), 1, 3)
        assert lanes.lane_totals() == {"fastforward": 4, "replayed": 2}


class TestSeedDerivation:
    def test_shot_zero_keeps_base_seed(self):
        assert shot_device_seed(1234, 0) == 1234

    def test_distinct_and_deterministic(self):
        seeds = [shot_device_seed(1234, s) for s in range(64)]
        assert len(set(seeds)) == 64
        assert seeds == [shot_device_seed(1234, s) for s in range(64)]
        assert all(0 <= s <= 0x7FFFFFFF for s in seeds)


class TestRunCircuitIntegration:
    def test_backend_shot_zero_only(self):
        """Extra lanes are timing-only; shot 0 carries any backend, so
        lane fan-out must not disturb shot 0's stats."""
        single = run_circuit(_static_circuit(), backend=None,
                             record_gate_log=False)
        multi = run_circuit(_static_circuit(), backend=None,
                            record_gate_log=False, shots=6)
        assert multi.lane_mode == "fastforward"
        assert multi.shot_stats[0]["makespan_cycles"] == \
               single.makespan_cycles
        assert multi.shot_makespans == [single.makespan_cycles] * 6
