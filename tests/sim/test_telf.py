"""TELF logging and waveform rendering."""

from repro.sim.telf import ExecutionStats, TelfLog


class TestTelfLog:
    def test_records_appended(self):
        log = TelfLog()
        log.log(5, "c0", "cw", port=1, value=2)
        assert len(log) == 1

    def test_filter_by_unit_kind_port(self):
        log = TelfLog()
        log.log(1, "c0", "cw", port=1)
        log.log(2, "c1", "cw", port=1)
        log.log(3, "c0", "sync_book", port=9)
        assert len(log.filter(unit="c0")) == 2
        assert len(log.filter(kind="cw")) == 2
        assert len(log.filter(unit="c0", kind="cw", port=1)) == 1

    def test_emissions_shortcut(self):
        log = TelfLog()
        log.log(1, "c0", "cw", port=0)
        log.log(2, "c0", "meas", port=0)
        assert len(log.emissions("c0")) == 1

    def test_dump_is_time_ordered(self):
        log = TelfLog()
        log.log(9, "c0", "cw", port=0)
        log.log(3, "c0", "cw", port=0)
        lines = log.dump().splitlines()
        assert lines[0].strip().startswith("3")

    def test_ascii_waveform_marks_pulses(self):
        log = TelfLog()
        log.log(0, "c0", "cw", port=7)
        log.log(10, "c0", "cw", port=7)
        art = log.ascii_waveform([("c0", 7)], t0=0, t1=20, resolution=1)
        row = art.splitlines()[1]
        assert row.count("#") == 2

    def test_ascii_waveform_scales_resolution(self):
        log = TelfLog()
        log.log(500, "c0", "cw", port=1)
        art = log.ascii_waveform([("c0", 1)], width=50)
        assert "#" in art


class TestExecutionStats:
    def test_aggregation(self):
        stats = ExecutionStats()
        stats.add_core("c0", instructions=10, codewords=2, syncs=1,
                       sync_stall=5, messages=3, violations=0)
        stats.add_core("c1", instructions=4, codewords=1, syncs=1,
                       sync_stall=0, messages=0, violations=1)
        assert stats.instructions_executed == 14
        assert stats.codewords_emitted == 3
        assert stats.syncs_completed == 2
        assert stats.sync_stall_cycles == 5
        assert stats.timing_violations == 1
        assert set(stats.per_core) == {"c0", "c1"}
