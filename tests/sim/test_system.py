"""ControlSystem integration: fabric behaviors and error paths."""

import pytest

from repro.core.config import CENTRAL_ADDRESS
from repro.errors import ExecutionError, SynchronizationError
from repro.isa import assemble
from repro.sim import ControlSystem, GateAction


class TestMessaging:
    def test_point_to_point_latency(self):
        system = ControlSystem(4, mesh_kind="line")
        system.load_program(0, assemble("send.i 1,7\nhalt"))
        system.load_program(1, assemble("recv $5,0\nhalt"))
        system.run()
        rx = system.telf.filter(unit="C1", kind="msg_rx")
        assert rx[0].time == system.config.neighbor_link_cycles
        assert system.cores[1].regs.read(5) == 7

    def test_remote_latency_via_tree(self):
        system = ControlSystem(20, mesh_kind="line")
        system.load_program(0, assemble("send.i 19,3\nhalt"))
        system.load_program(19, assemble("recv $5,0\nhalt"))
        system.run()
        rx = system.telf.filter(unit="C19", kind="msg_rx")
        expected = system.topology.message_latency_cycles(0, 19)
        assert rx[0].time == expected

    def test_central_broadcast_reaches_everyone(self):
        system = ControlSystem(3, mesh_kind="line")
        system.load_program(0, assemble(
            "send.i {},9\nrecv $5,{}\nhalt".format(CENTRAL_ADDRESS,
                                                   CENTRAL_ADDRESS)))
        for address in (1, 2):
            system.load_program(address, assemble(
                "recv $5,{}\nhalt".format(CENTRAL_ADDRESS)))
        system.run()
        times = [system.telf.filter(unit="C{}".format(a),
                                    kind="msg_rx")[0].time
                 for a in range(3)]
        assert len(set(times)) == 1  # identical arrival: common time base
        assert times[0] == system.config.baseline_broadcast_cycles

    def test_unknown_destination_rejected(self):
        system = ControlSystem(2, mesh_kind="line")
        system.load_program(0, assemble("send.i 99,1\nhalt"))
        with pytest.raises(ExecutionError):
            system.run()


class TestSyncValidation:
    def test_sync_with_non_neighbor_rejected(self):
        system = ControlSystem(4, mesh_kind="line")
        system.load_program(0, assemble("sync 2\nhalt"))
        system.load_program(2, assemble("sync 0\nhalt"))
        with pytest.raises(SynchronizationError):
            system.run()

    def test_unregistered_group_rejected(self):
        system = ControlSystem(3, mesh_kind="line")
        system.load_program(0, assemble("sync 500,5\nwaiti 5\nhalt"))
        with pytest.raises(SynchronizationError):
            system.run()

    def test_group_needs_two_members(self):
        system = ControlSystem(3, mesh_kind="line")
        with pytest.raises(SynchronizationError):
            system.register_sync_group(7, [0])

    def test_deadlock_detected(self):
        system = ControlSystem(2, mesh_kind="line")
        # C0 waits for a message that never comes.
        system.load_program(0, assemble("recv $5,1\nhalt"))
        system.load_program(1, assemble("halt"))
        with pytest.raises(ExecutionError):
            system.run()

    def test_deadlock_tolerated_when_allowed(self):
        system = ControlSystem(2, mesh_kind="line")
        system.load_program(0, assemble("recv $5,1\nhalt"))
        system.load_program(1, assemble("halt"))
        stats = system.run(allow_blocked=True)
        assert stats.makespan_cycles == 0


class TestCodewordDispatch:
    def test_unmapped_codewords_counted(self):
        system = ControlSystem(1, mesh_kind="none")
        system.load_program(0, assemble("cw.i.i 0,1\nhalt"))
        system.run()
        assert system.unmapped_codewords == 1

    def test_mapped_codeword_reaches_device(self):
        system = ControlSystem(1, mesh_kind="none")
        system.set_codeword_table(0, {(0, 1): GateAction("x", (0,))})
        system.load_program(0, assemble("cw.i.i 0,1\nhalt"))
        system.run()
        assert system.device.gates_applied == 1

    def test_repeated_region_syncs_epochs(self):
        system = ControlSystem(3, mesh_kind="line")
        system.register_sync_group(40, [0, 1])
        for address in (0, 1):
            program = assemble(
                "sync 40,1\nwaiti 1\ncw.i.i 0,1\n" * 3 + "halt")
            system.load_program(address, program)
        system.run()
        t0 = [r.time for r in system.telf.emissions("C0")]
        t1 = [r.time for r in system.telf.emissions("C1")]
        assert t0 == t1 and len(t0) == 3
