"""Discrete-event engine semantics."""

import pytest

from repro.errors import ExecutionError
from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.at(10, lambda: order.append("b"))
        engine.at(5, lambda: order.append("a"))
        engine.run()
        assert order == ["a", "b"]

    def test_same_time_fifo(self):
        engine = Engine()
        order = []
        engine.at(5, lambda: order.append(1))
        engine.at(5, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_after_relative(self):
        engine = Engine()
        engine.at(10, lambda: engine.after(5, lambda: None))
        engine.run()
        assert engine.now == 15

    def test_scheduling_in_past_rejected(self):
        engine = Engine()
        engine.at(10, lambda: engine.at(5, lambda: None))
        with pytest.raises(ExecutionError):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ExecutionError):
            Engine().after(-1, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.at(100, lambda: fired.append(True))
        engine.run(until=50)
        assert engine.now == 50 and not fired
        engine.run()
        assert fired == [True]

    def test_run_until_advances_clock_when_idle(self):
        engine = Engine()
        engine.run(until=123)
        assert engine.now == 123

    def test_events_processed_counter(self):
        engine = Engine()
        for t in range(5):
            engine.at(t, lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        with pytest.raises(ExecutionError):
            engine.run(max_events=100)

    def test_cascading_events(self):
        engine = Engine()
        values = []
        engine.at(1, lambda: (values.append(engine.now),
                              engine.after(2, lambda: values.append(engine.now))))
        engine.run()
        assert values == [1, 3]


class TestExceptionResume:
    def test_same_cycle_events_survive_callback_exception(self):
        engine = Engine()
        fired = []
        engine.at(5, lambda: fired.append("a"))

        def boom():
            raise RuntimeError("boom")

        engine.at(5, boom)
        engine.at(5, lambda: fired.append("b"))
        with pytest.raises(RuntimeError):
            engine.run()
        assert fired == ["a"]
        assert engine.pending == 1
        # Newly scheduled same-cycle work joins the orphaned bucket ...
        engine.at(5, lambda: fired.append("c"))
        # ... and a later run() drains both in scheduling order.
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.pending == 0
