"""Discrete-event engine semantics."""

import pytest

from repro.errors import ExecutionError
from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.at(10, lambda: order.append("b"))
        engine.at(5, lambda: order.append("a"))
        engine.run()
        assert order == ["a", "b"]

    def test_same_time_fifo(self):
        engine = Engine()
        order = []
        engine.at(5, lambda: order.append(1))
        engine.at(5, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_after_relative(self):
        engine = Engine()
        engine.at(10, lambda: engine.after(5, lambda: None))
        engine.run()
        assert engine.now == 15

    def test_scheduling_in_past_rejected(self):
        engine = Engine()
        engine.at(10, lambda: engine.at(5, lambda: None))
        with pytest.raises(ExecutionError):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ExecutionError):
            Engine().after(-1, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.at(100, lambda: fired.append(True))
        engine.run(until=50)
        assert engine.now == 50 and not fired
        engine.run()
        assert fired == [True]

    def test_run_until_advances_clock_when_idle(self):
        engine = Engine()
        engine.run(until=123)
        assert engine.now == 123

    def test_events_processed_counter(self):
        engine = Engine()
        for t in range(5):
            engine.at(t, lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        with pytest.raises(ExecutionError):
            engine.run(max_events=100)

    def test_cascading_events(self):
        engine = Engine()
        values = []
        engine.at(1, lambda: (values.append(engine.now),
                              engine.after(2, lambda: values.append(engine.now))))
        engine.run()
        assert values == [1, 3]


class TestExceptionResume:
    def test_same_cycle_events_survive_callback_exception(self):
        engine = Engine()
        fired = []
        engine.at(5, lambda: fired.append("a"))

        def boom():
            raise RuntimeError("boom")

        engine.at(5, boom)
        engine.at(5, lambda: fired.append("b"))
        with pytest.raises(RuntimeError):
            engine.run()
        assert fired == ["a"]
        assert engine.pending == 1
        # Newly scheduled same-cycle work joins the orphaned bucket ...
        engine.at(5, lambda: fired.append("c"))
        # ... and a later run() drains both in scheduling order.
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.pending == 0


class TestTimingWheel:
    """Calendar-queue behavior: wheel window, far-event overflow, wrap."""

    def test_far_future_overflow_and_order(self):
        from repro.sim.engine import WHEEL_SIZE
        engine = Engine()
        fired = []
        times = [0, 1, WHEEL_SIZE - 1, WHEEL_SIZE, WHEEL_SIZE + 1,
                 3 * WHEEL_SIZE + 7, 10 * WHEEL_SIZE]
        for t in reversed(times):
            engine.at(t, lambda t=t: fired.append(t))
        engine.run()
        assert fired == sorted(times)
        assert engine.now == 10 * WHEEL_SIZE

    def test_window_advance_with_until(self):
        from repro.sim.engine import WHEEL_SIZE
        engine = Engine()
        fired = []
        engine.at(5 * WHEEL_SIZE, lambda: fired.append(engine.now))
        # Stop before the far event: it must stay pending and fire later.
        assert engine.run(until=10) == 10
        assert fired == [] and engine.pending == 1
        # Scheduling near ``now`` after the pause must not corrupt order.
        engine.at(20, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [20, 5 * WHEEL_SIZE]

    def test_same_slot_different_windows(self):
        from repro.sim.engine import WHEEL_SIZE
        engine = Engine()
        fired = []
        # Same slot index (t & mask equal), different windows.
        engine.at(3, lambda: fired.append(3))
        engine.at(3 + WHEEL_SIZE, lambda: fired.append(3 + WHEEL_SIZE))
        engine.at(3 + 2 * WHEEL_SIZE,
                  lambda: fired.append(3 + 2 * WHEEL_SIZE))
        engine.run()
        assert fired == [3, 3 + WHEEL_SIZE, 3 + 2 * WHEEL_SIZE]

    def test_callbacks_scheduling_into_next_window(self):
        from repro.sim.engine import WHEEL_SIZE
        engine = Engine()
        fired = []

        def hop(depth):
            fired.append(engine.now)
            if depth:
                engine.after(WHEEL_SIZE + 1, lambda: hop(depth - 1))

        engine.at(0, lambda: hop(4))
        engine.run()
        assert fired == [i * (WHEEL_SIZE + 1) for i in range(5)]
