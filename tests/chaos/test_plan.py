"""Chaos fabric core: plan round-trips, pure decisions, strict
validation, budgets, attempt scoping and the process-global injector."""

import pytest

from repro.chaos import (CHAOS_PLAN_ENV, ChaosError, FaultInjector,
                         FaultPlan, FaultRule, KNOWN_FAULTS, activate,
                         active, deactivate, load_plan)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Chaos is process-global state; every test leaves it unset."""
    deactivate()
    yield
    deactivate()


def make_plan(seed=1234, **rule_kwargs):
    defaults = dict(site="worker", fault="crash_before_complete")
    defaults.update(rule_kwargs)
    return FaultPlan(seed=seed, rules=(FaultRule(**defaults),))


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        plan = FaultPlan(seed=99, name="soak", rules=(
            FaultRule(site="http", fault="drop", rate=0.05,
                      max_injections=7),
            FaultRule(site="worker", fault="crash_before_complete",
                      rate=1.0, attempts=(1,)),
            FaultRule(site="scheduler", fault="clock_skew", arg=3.5),
            FaultRule(site="diskcache", fault="corrupt", rate=0.5),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_defaults_are_omitted_from_json(self):
        data = make_plan().to_dict()
        (rule,) = data["rules"]
        assert set(rule) == {"site", "fault", "rate"}

    def test_load_plan_reads_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(make_plan(seed=7).to_json())
        assert load_plan(str(path)).seed == 7

    def test_load_plan_missing_file_is_loud(self, tmp_path):
        with pytest.raises(ChaosError, match="cannot read"):
            load_plan(str(tmp_path / "nope.json"))


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault site"):
            FaultRule(site="network", fault="drop").validate()

    def test_unknown_fault_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault"):
            FaultRule(site="http", fault="explode").validate()

    def test_rate_bounds(self):
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ChaosError, match="rate"):
                FaultRule(site="http", fault="drop",
                          rate=rate).validate()

    def test_bad_attempts_rejected(self):
        with pytest.raises(ChaosError, match="attempts"):
            FaultRule(site="worker", fault="sigterm",
                      attempts=(0,)).validate()

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault-plan"):
            FaultPlan.from_dict({"seed": 1, "surprise": True})

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault-rule"):
            FaultPlan.from_dict({"seed": 1, "rules": [
                {"site": "http", "fault": "drop", "chance": 0.5}]})

    def test_every_known_pair_validates(self):
        for site, faults in KNOWN_FAULTS.items():
            for fault in faults:
                FaultRule(site=site, fault=fault).validate()


class TestDeterminism:
    def test_fires_is_pure(self):
        plan = FaultPlan(seed=42, rules=(
            FaultRule(site="http", fault="drop", rate=0.3),))
        (rule,) = plan.rules
        tokens = [("status", i) for i in range(200)]
        first = [plan.fires(rule, t) for t in tokens]
        assert first == [plan.fires(rule, t) for t in tokens]
        # A ~0.3 rate over 200 draws hits some but not all.
        assert 20 < sum(first) < 120

    def test_seed_changes_the_victim_set(self):
        rule = FaultRule(site="http", fault="drop", rate=0.3)
        tokens = [("status", i) for i in range(200)]
        a = FaultPlan(seed=1, rules=(rule,))
        b = FaultPlan(seed=2, rules=(rule,))
        assert [a.fires(rule, t) for t in tokens] != \
            [b.fires(rule, t) for t in tokens]

    def test_two_injectors_agree(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="diskcache", fault="corrupt", rate=0.4),))
        one, two = FaultInjector(plan), FaultInjector(plan)
        keys = ["k{:02d}".format(i) for i in range(50)]
        assert [one.decide("diskcache", "corrupt", k) is not None
                for k in keys] == \
               [two.decide("diskcache", "corrupt", k) is not None
                for k in keys]

    def test_planned_preview_matches_decide(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(site="worker", fault="crash_before_complete",
                      rate=0.5, attempts=(1,)),))
        tokens = [("cell{}".format(i), attempt)
                  for i in range(30) for attempt in (1, 2)]
        predicted = set(plan.planned(
            "worker", "crash_before_complete", tokens))
        injector = FaultInjector(plan)
        fired = {(key, attempt) for key, attempt in tokens
                 if injector.decide("worker", "crash_before_complete",
                                    key, attempt=attempt)}
        assert fired == predicted
        assert all(attempt == 1 for _key, attempt in fired)


class TestInjector:
    def test_budget_caps_injections(self):
        plan = FaultPlan(seed=5, rules=(
            FaultRule(site="http", fault="drop", rate=1.0,
                      max_injections=3),))
        injector = FaultInjector(plan)
        fired = sum(1 for i in range(10)
                    if injector.decide("http", "drop", "status", i))
        assert fired == 3
        assert injector.injected == {("http", "drop"): 3}

    def test_attempts_scope_filters(self):
        plan = make_plan(attempts=(2,))
        injector = FaultInjector(plan)
        assert injector.decide("worker", "crash_before_complete",
                               "k", attempt=1) is None
        assert injector.decide("worker", "crash_before_complete",
                               "k", attempt=2) is not None

    def test_unplanned_site_is_none(self):
        injector = FaultInjector(make_plan())
        assert injector.decide("http", "drop", "status", 0) is None

    def test_seq_counts_per_group(self):
        injector = FaultInjector(FaultPlan(seed=1))
        assert [injector.seq("a") for _ in range(3)] == [0, 1, 2]
        assert injector.seq("b") == 0

    def test_injected_by_site(self):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="http", fault="drop"),
            FaultRule(site="http", fault="truncate"),))
        injector = FaultInjector(plan)
        injector.decide("http", "drop", "a", 0)
        injector.decide("http", "truncate", "a", 0)
        assert injector.injected_by_site() == {"http": 2}


class TestGlobalInjector:
    def test_default_is_inactive(self):
        assert active() is None

    def test_activate_installs_and_deactivate_resets(self):
        injector = activate(make_plan())
        assert active() is injector
        deactivate()
        assert active() is None

    def test_env_plan_is_picked_up(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(make_plan(seed=31).to_json())
        monkeypatch.setenv(CHAOS_PLAN_ENV, str(path))
        deactivate()
        injector = active()
        assert injector is not None
        assert injector.plan.seed == 31
