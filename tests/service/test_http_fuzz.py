"""Fuzzing the HTTP front end: every malformed request gets a clean
4xx/5xx (or a safe close) and the server keeps serving afterwards.

The fuzz payloads are hostile at the *protocol* layer — broken request
lines, lying content-lengths, non-UTF-8 bodies, mid-body disconnects —
which the JSON-level tests in ``test_http.py`` never reach."""

import asyncio

import pytest

from repro.service.http import (MAX_BODY_BYTES, ServiceServer,
                                http_request)
from repro.service.scheduler import Scheduler
from repro.service.store import CellStore


async def start_server(tmp_path):
    scheduler = Scheduler(CellStore(str(tmp_path / "store")))
    server = ServiceServer(scheduler, port=0)
    await server.start()
    return server


async def raw_exchange(server, blob: bytes, close_early: bool = False
                       ) -> bytes:
    """Write ``blob`` to the server and return whatever comes back
    (b"" when the server just closes)."""
    reader, writer = await asyncio.open_connection(
        server.host, server.port)
    try:
        writer.write(blob)
        await writer.drain()
        if close_early:
            writer.write_eof()
        return await asyncio.wait_for(reader.read(), 10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def still_serving(server) -> None:
    status, body = await http_request(server.host, server.port,
                                      "GET", "/healthz")
    assert (status, body) == (200, {"ok": True})


def status_of(raw: bytes) -> int:
    assert raw, "server closed without responding"
    return int(raw.split(b"\r\n", 1)[0].split(b" ", 2)[1])


FUZZ_REQUESTS = [
    # (label, raw bytes, acceptable statuses)
    ("garbage request line", b"\x00\xff\xfe garbage\r\n\r\n", {400}),
    ("missing version", b"GET\r\n\r\n", {400}),
    ("unknown method", b"BREW /healthz HTTP/1.1\r\n\r\n", {404}),
    ("unknown path", b"GET /../../etc/passwd HTTP/1.1\r\n\r\n", {404}),
    ("post without body", b"POST /submit HTTP/1.1\r\n\r\n", {400}),
    ("malformed json",
     b"POST /submit HTTP/1.1\r\nContent-Length: 8\r\n\r\n{oops!!!", {400}),
    ("json scalar body",
     b"POST /submit HTTP/1.1\r\nContent-Length: 4\r\n\r\n1234", {400}),
    ("non-utf8 body",
     b"POST /submit HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc",
     {400}),
    ("negative content-length",
     b"POST /submit HTTP/1.1\r\nContent-Length: -5\r\n\r\n", {400}),
    ("non-numeric content-length",
     b"POST /submit HTTP/1.1\r\nContent-Length: lots\r\n\r\n", {400}),
    ("oversized declared body",
     "POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n".format(
         MAX_BODY_BYTES + 1).encode(), {400}),
    ("bad field types",
     b"POST /lease HTTP/1.1\r\nContent-Length: 15\r\n\r\n{\"worker\": 123}",
     {400}),
]


class TestFuzz:
    @pytest.mark.parametrize(
        "label,blob,expected",
        FUZZ_REQUESTS, ids=[case[0] for case in FUZZ_REQUESTS])
    def test_hostile_request_gets_clean_error(self, tmp_path, label,
                                              blob, expected):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                raw = await raw_exchange(server, blob)
                code = status_of(raw)
                await still_serving(server)
                return code
            finally:
                await server.close()

        code = asyncio.run(scenario())
        assert code in expected, label

    def test_mid_body_disconnect(self, tmp_path):
        """A client that advertises 100 bytes and hangs up after 10:
        the read fails loudly server-side, the connection dies, and the
        server moves on."""
        async def scenario():
            server = await start_server(tmp_path)
            try:
                raw = await raw_exchange(
                    server,
                    b"POST /submit HTTP/1.1\r\nContent-Length: 100"
                    b"\r\n\r\n" + b"x" * 10, close_early=True)
                await still_serving(server)
                return raw
            finally:
                await server.close()

        raw = asyncio.run(scenario())
        # Either a 400 raced out before the close or the server just
        # dropped the dead connection — both are clean outcomes.
        if raw:
            assert status_of(raw) == 400

    def test_empty_connection(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                raw = await raw_exchange(server, b"", close_early=True)
                await still_serving(server)
                return raw
            finally:
                await server.close()

        raw = asyncio.run(scenario())
        if raw:
            assert status_of(raw) == 400

    def test_fuzz_barrage_then_real_work(self, tmp_path, tiny_submission):
        """Every hostile request in sequence on one server, then a real
        submission still lands — no poisoned state, no dead loop."""
        async def scenario():
            server = await start_server(tmp_path)
            try:
                for _label, blob, _expected in FUZZ_REQUESTS:
                    await raw_exchange(server, blob)
                status, sub = await http_request(
                    server.host, server.port, "POST", "/submit",
                    tiny_submission.to_dict())
                return status, sub
            finally:
                await server.close()

        status, sub = asyncio.run(scenario())
        assert status == 201
        assert sub["state"] in ("running", "done")
