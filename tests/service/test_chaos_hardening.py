"""Hardening that survives the chaos fabric: voluntary release,
heartbeats, idempotent submits, fetch requeue, client retry/backoff,
and seeded end-to-end fault soaks over real processes."""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.chaos import FaultPlan, FaultRule, activate, deactivate
from repro.harness.parallel import SweepTask, run_cell
from repro.harness.spec import SweepSpec, SweepSubmission
from repro.service import client
from repro.service.client import ServiceClientError, backoff_intervals
from repro.service.scheduler import Scheduler, ServiceError
from repro.service.store import CellStore

from svc_util import SCALE, free_port, repro_env, serial_bench


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    deactivate()
    yield
    deactivate()


def make_scheduler(tmp_path, **kwargs):
    return Scheduler(CellStore(str(tmp_path / "store")), **kwargs)


async def drain(scheduler, worker="w0"):
    completed = 0
    while True:
        job = await scheduler.lease(worker)
        if job is None:
            return completed
        cell = run_cell(SweepTask.from_dict(job["task"]))
        await scheduler.complete(worker, job["key"], job["lease"],
                                 result=cell.to_dict())
        completed += 1


class TestRelease:
    def test_release_requeues_without_burning_attempt(self, tmp_path):
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))

        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(spec=spec))
            job = await scheduler.lease("w0")
            reply = await scheduler.release(
                "w0", job["key"], job["lease"], reason="draining")
            again = await scheduler.lease("w1")
            return scheduler, job, reply, again

        scheduler, job, reply, again = asyncio.run(scenario())
        assert reply == {"ok": True, "late": False, "reason": "draining"}
        assert scheduler.counters.releases == 1
        assert again["key"] == job["key"]
        # The voluntary hand-back did not consume a retry attempt.
        assert again["attempt"] == 1
        assert again["lease"] != job["lease"]

    def test_stale_release_is_late_noop(self, tmp_path, tiny_submission):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(tiny_submission)
            job = await scheduler.lease("w0")
            reply = await scheduler.release(
                "w0", job["key"], "L99999999")
            return scheduler, job, reply

        scheduler, job, reply = asyncio.run(scenario())
        assert reply["late"] is True
        assert scheduler.counters.releases == 0
        # The real lease is untouched.
        assert scheduler._jobs[job["key"]].lease_id == job["lease"]


class TestHeartbeat:
    def test_heartbeat_keeps_a_slow_worker_alive(self, tmp_path,
                                                 tiny_submission):
        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=0.3)
            await scheduler.submit(tiny_submission)
            job = await scheduler.lease("slow")
            await asyncio.sleep(0.2)
            beat = await scheduler.heartbeat("slow", job["key"],
                                             job["lease"])
            await asyncio.sleep(0.2)
            # 0.4s since the grant, 0.2s since the beat: without the
            # extension this lease would be expired by now.
            expired = await scheduler.expire_leases()
            return scheduler, beat, expired

        scheduler, beat, expired = asyncio.run(scenario())
        assert beat == {"ok": True, "extended": True}
        assert expired == 0
        assert scheduler.counters.heartbeats == 1
        assert "last_heartbeat" in scheduler._workers["slow"]

    def test_silent_worker_still_expires(self, tmp_path,
                                         tiny_submission):
        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=0.2)
            await scheduler.submit(tiny_submission)
            await scheduler.lease("dead")
            await asyncio.sleep(0.35)
            return scheduler, await scheduler.expire_leases()

        scheduler, expired = asyncio.run(scenario())
        assert expired == 1
        assert scheduler.counters.leases_expired == 1

    def test_stale_heartbeat_does_not_extend(self, tmp_path,
                                             tiny_submission):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(tiny_submission)
            job = await scheduler.lease("w0")
            return await scheduler.heartbeat("w0", job["key"],
                                             "L99999999")

        beat = asyncio.run(scenario())
        assert beat == {"ok": True, "extended": False}


class TestIdempotentSubmit:
    def test_replay_returns_original_submission(self, tmp_path,
                                                tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            submission = SweepSubmission(spec=tiny_spec, name="once",
                                         idempotency_key="idem-1")
            first = await scheduler.submit(submission)
            second = await scheduler.submit(submission)
            return scheduler, first, second

        scheduler, first, second = asyncio.run(scenario())
        assert second["id"] == first["id"]
        assert second["resubmitted"] is True
        assert second["idempotency_key"] == "idem-1"
        assert "resubmitted" not in first
        assert scheduler.counters.submissions == 1
        assert scheduler.counters.idempotent_replays == 1
        # Cells were charged once, not twice.
        assert scheduler.counters.cells_total == 4

    def test_different_keys_are_distinct_submissions(self, tmp_path,
                                                     tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            a = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, idempotency_key="idem-a"))
            b = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, idempotency_key="idem-b"))
            return a, b

        a, b = asyncio.run(scenario())
        assert a["id"] != b["id"]

    def test_content_key_is_deterministic(self, tiny_spec, overlap_spec):
        one = SweepSubmission(spec=tiny_spec, name="x")
        two = SweepSubmission(spec=tiny_spec, name="x")
        assert one.content_idempotency_key() == \
            two.content_idempotency_key()
        other = SweepSubmission(spec=overlap_spec, name="x")
        assert other.content_idempotency_key() != \
            one.content_idempotency_key()

    def test_client_attaches_key_only_with_retries(self, tiny_spec):
        calls = {}

        def fake_request(url, method, path, payload=None, **kwargs):
            calls["payload"] = payload
            return {"id": "s000001"}

        original = client.request
        client.request = fake_request
        try:
            client.submit("http://x", SweepSubmission(spec=tiny_spec))
            assert "idempotency_key" not in calls["payload"]
            client.submit("http://x", SweepSubmission(spec=tiny_spec),
                          retries=2)
            assert calls["payload"]["idempotency_key"]
        finally:
            client.request = original


class TestFetchRequeue:
    def test_lost_cell_requeues_and_recovers(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            status = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="tiny"))
            await drain(scheduler)
            # Bit-rot one stored cell behind the scheduler's back.
            victim = scheduler._submissions[status["id"]].keys[0]
            path = os.path.join(scheduler.store.directory,
                                victim + ".pkl")
            blob = bytearray(open(path, "rb").read())
            blob[-6] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(blob))
            try:
                await scheduler.fetch(status["id"])
                raised = None
            except ServiceError as exc:
                raised = str(exc)
            mid = scheduler.status(status["id"])
            await drain(scheduler)
            doc = await scheduler.fetch(status["id"])
            return scheduler, raised, mid, doc

        scheduler, raised, mid, doc = asyncio.run(scenario())
        assert raised is not None and "requeued for recompute" in raised
        assert mid["state"] == "running"
        assert scheduler.counters.fetch_requeues == 1
        # The quarantined cell recomputed; the final artifact is intact.
        reference = serial_bench(tiny_spec, name="tiny")
        assert doc["results_sha256"] == reference["results_sha256"]

    def test_submit_verifies_first_sight_of_warm_entries(self, tmp_path,
                                                         tiny_spec):
        async def scenario():
            warm = make_scheduler(tmp_path)
            await warm.submit(SweepSubmission(spec=tiny_spec))
            await drain(warm)
            # Rot one entry, then point a *fresh* scheduler (empty
            # verification memo) at the same store.
            store_dir = warm.store.directory
            name = sorted(n for n in os.listdir(store_dir)
                          if n.endswith(".pkl"))[0]
            path = os.path.join(store_dir, name)
            blob = bytearray(open(path, "rb").read())
            blob[-6] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(blob))
            fresh = Scheduler(CellStore(store_dir))
            status = await fresh.submit(SweepSubmission(spec=tiny_spec))
            return fresh, status

        fresh, status = asyncio.run(scenario())
        # Three verified warm hits, one quarantined miss to recompute.
        assert status["store_hits"] == 3
        assert status["misses"] == 1
        assert status["state"] == "running"
        assert fresh.store.cache.corrupt_keys() != []


class TestSchedulerChaos:
    def test_duplicate_complete_is_absorbed(self, tmp_path,
                                            tiny_submission):
        activate(FaultPlan(seed=1, rules=(
            FaultRule(site="scheduler", fault="duplicate_complete",
                      max_injections=10),)))

        async def scenario():
            scheduler = make_scheduler(tmp_path)
            status = await scheduler.submit(tiny_submission)
            await drain(scheduler)
            return scheduler, scheduler.status(status["id"])

        scheduler, status = asyncio.run(scenario())
        assert status["state"] == "done"
        assert scheduler.counters.completes == 4
        # Every complete was delivered twice; the doubles all landed on
        # the idempotent late path.
        assert scheduler.counters.late_completes == 4

    def test_clock_skew_expires_live_leases(self, tmp_path,
                                            tiny_submission):
        activate(FaultPlan(seed=1, rules=(
            FaultRule(site="scheduler", fault="clock_skew",
                      arg=3600.0, max_injections=1),)))

        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=120.0)
            await scheduler.submit(tiny_submission)
            await scheduler.lease("w0")
            # The skewed sweep ages the fresh 120s lease instantly.
            first = await scheduler.expire_leases()
            second = await scheduler.expire_leases()
            return first, second

        first, second = asyncio.run(scenario())
        assert first == 1
        assert second == 0  # budget spent: the skew happened once


class TestClientBackoff:
    def test_intervals_are_capped_and_jittered(self):
        import random
        rng = random.Random(7)
        sleeps = backoff_intervals(base=0.1, cap=2.0, rng=rng)
        values = [next(sleeps) for _ in range(12)]
        assert all(0.0 < value <= 2.0 for value in values)
        # Early sleeps are cheap, later ones approach the cap.
        assert values[0] <= 0.1
        assert max(values[6:]) > 1.0

    def test_transient_failures_retry_within_budget(self, monkeypatch):
        attempts = []

        def flaky(url, method, path, payload, timeout):
            attempts.append(path)
            if len(attempts) < 3:
                raise ServiceClientError("torn", transient=True)
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        monkeypatch.setattr(client.time, "sleep", lambda s: None)
        assert client.request("http://x", "GET", "/healthz",
                              retries=3) == {"ok": True}
        assert len(attempts) == 3

    def test_permanent_rejections_never_retry(self, monkeypatch):
        attempts = []

        def rejected(url, method, path, payload, timeout):
            attempts.append(path)
            raise ServiceClientError("bad submission", status=400,
                                     transient=False)

        monkeypatch.setattr(client, "_request_once", rejected)
        with pytest.raises(ServiceClientError):
            client.request("http://x", "POST", "/submit", retries=5)
        assert len(attempts) == 1

    def test_budget_exhaustion_raises_last_error(self, monkeypatch):
        def always_torn(url, method, path, payload, timeout):
            raise ServiceClientError("torn", transient=True)

        monkeypatch.setattr(client, "_request_once", always_torn)
        monkeypatch.setattr(client.time, "sleep", lambda s: None)
        with pytest.raises(ServiceClientError, match="torn"):
            client.request("http://x", "GET", "/status/s1", retries=2)


class TestFallbackLocal:
    def test_unreachable_service_degrades_to_local_run(self, tmp_path,
                                                       capsys):
        """``submit --fallback local`` against a dead URL produces the
        exact artifact the service would have, from the same store."""
        from repro.harness.benchjson import load_bench
        from repro.service.__main__ import main

        out = tmp_path / "artifacts"
        cache = tmp_path / "store"
        code = main([
            "submit", "--url", "http://127.0.0.1:1",
            "--workloads", "bv_n400", "--schemes", "bisp",
            "--scale", str(SCALE), "--name", "fb",
            "--retries", "0", "--fallback", "local",
            "--cache-dir", str(cache), "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "falling back to the local parallel harness" in \
            captured.err
        doc = load_bench(str(out / "BENCH_fb.json"))
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))
        assert doc["results_sha256"] == \
            serial_bench(spec, name="fb")["results_sha256"]
        # The fallback warmed the shared store for a later service run.
        assert len(CellStore(str(cache))) == 1

    def test_no_fallback_still_fails_loudly(self, tmp_path, capsys):
        from repro.service.__main__ import main

        code = main([
            "submit", "--url", "http://127.0.0.1:1",
            "--workloads", "bv_n400", "--schemes", "bisp",
            "--scale", str(SCALE), "--retries", "0"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


@pytest.mark.slow
class TestEndToEndChaos:
    """Real processes under a seeded plan: crashes, 500s and a
    duplicate complete between submit and byte-identical fetch."""

    def test_seeded_faults_converge_byte_identical(self, tmp_path):
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))
        plan = FaultPlan(seed=20260808, rules=(
            # Attempt 1 of every cell dies post-compute, pre-store.
            FaultRule(site="worker", fault="crash_before_complete",
                      rate=1.0, attempts=(1,), max_injections=2),
            FaultRule(site="scheduler", fault="duplicate_complete",
                      rate=1.0, max_injections=2),
            FaultRule(site="http", fault="error_500", rate=0.05,
                      max_injections=3),
        ))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        store = tmp_path / "store"
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", str(port), "--store", str(store),
             "--workers", "2", "--worker-poll", "0.5",
             "--lease-ttl", "2", "--chaos-plan", str(plan_path)],
            env=repro_env())
        try:
            client.wait_healthy(url, timeout=60.0)
            sub = client.submit(url, SweepSubmission(
                spec=spec, name="soak"), retries=4)
            status = client.wait_done(url, sub["id"], timeout=120.0)
            assert status["state"] == "done"
            metrics = client.metrics(url)
            doc = client.fetch(url, sub["id"], retries=4)
        finally:
            serve.terminate()
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()

        counters = metrics["counters"]
        # The injected crash cost (at least) one lease cycle...
        assert counters["leases_granted"] >= 2
        # ...but the sweep still converged to the exact serial bytes.
        reference = serial_bench(spec, name="soak")
        assert doc["results_sha256"] == reference["results_sha256"]
        assert doc["results"] == reference["results"]
        assert CellStore(str(store)).pending_tmps() == 0

    def test_sigterm_drains_gracefully(self, tmp_path):
        """SIGTERM mid-cell: the worker finishes and reports the cell,
        exits 0, and no lease is left to expire."""
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))
        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        store = tmp_path / "store"
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", str(port), "--store", str(store),
             "--workers", "0", "--lease-ttl", "30"],
            env=repro_env())
        worker = None
        try:
            client.wait_healthy(url, timeout=60.0)
            sub = client.submit(url, SweepSubmission(
                spec=spec, name="drainy"))
            # The deprecated alias still shapes the fault window, which
            # gives SIGTERM a wide mid-cell target.
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.service.worker",
                 "--url", url, "--store", str(store),
                 "--worker-id", "drainer", "--poll", "0.5",
                 "--cell-delay-ms", "3000"],
                env=repro_env())
            deadline = time.monotonic() + 60.0
            while client.metrics(url)["counters"]["leases_granted"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            os.kill(worker.pid, signal.SIGTERM)
            assert worker.wait(timeout=60) == 0
            status = client.status(url, sub["id"])
            counters = client.metrics(url)["counters"]
        finally:
            if worker is not None and worker.poll() is None:
                worker.kill()
            serve.terminate()
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()

        assert status["state"] == "done"
        assert counters["completes"] == 1
        assert counters["leases_expired"] == 0
