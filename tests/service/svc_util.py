"""Helpers shared by the sweep-service tests (imported as a plain
module — the test tree is intentionally package-less, so this file has
a name no other test directory uses)."""

import json
import os
import socket

from repro.harness.benchjson import make_bench
from repro.harness.spec import SweepSpec
from repro.harness.sweep import run_sweep

SCALE = 0.02
WORKLOADS = ("bv_n400", "qft_n30")
SCHEMES = ("bisp", "lockstep")


def serial_bench(spec: SweepSpec, name: str = "tiny") -> dict:
    """The offline reference: serial run_sweep assembled into a BENCH
    document exactly as ``python -m repro.harness.sweep`` would."""
    rows, stats = run_sweep(spec, processes=1)
    return make_bench(name, rows, kind="sweep", spec=spec.to_dict(),
                      cache={"hits": stats.hits, "misses": stats.misses})


def repro_env() -> dict:
    """Environment for spawned service/worker subprocesses: the parent's
    plus the repo's ``src`` on PYTHONPATH (subprocesses do not inherit
    pytest's ``pythonpath`` ini option)."""
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env = dict(os.environ)
    current = env.get("PYTHONPATH", "")
    if src not in current.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + current if current else "")
    return env


def digest_of_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)["results_sha256"]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
