"""Scheduler unit tests: dedup, priorities, quotas, leases, resume.

No HTTP here — the scheduler is driven directly through its coroutine
API inside ``asyncio.run`` (the tree has no pytest-asyncio and does not
need it).  Workers are simulated by calling ``lease``/``complete``
ourselves, which also makes crash timing deterministic.
"""

import asyncio

import pytest

from repro.harness.parallel import SweepTask, run_cell, tasks_from_spec
from repro.harness.spec import SweepSpec, SweepSubmission
from repro.service.scheduler import Scheduler, ServiceError
from repro.service.store import CellStore

from svc_util import SCALE, serial_bench


def make_scheduler(tmp_path, **kwargs):
    return Scheduler(CellStore(str(tmp_path / "store")), **kwargs)


async def drain(scheduler, worker="w0"):
    """Complete every queued/leased cell like a perfect worker would."""
    completed = 0
    while True:
        job = await scheduler.lease(worker)
        if job is None:
            return completed
        cell = run_cell(SweepTask.from_dict(job["task"]))
        await scheduler.complete(worker, job["key"], job["lease"],
                                 result=cell.to_dict())
        completed += 1


class TestSubmit:
    def test_submit_shards_grid(self, tmp_path, tiny_submission):
        scheduler = make_scheduler(tmp_path)
        status = asyncio.run(scheduler.submit(tiny_submission))
        assert status["cells_total"] == 4
        assert status["state"] == "running"
        assert status["misses"] == 4
        assert scheduler.queue_depth() == 4

    def test_empty_grid_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        spec = SweepSpec(tags=("nope_no_such_tag",), scales=(SCALE,))
        with pytest.raises((ServiceError, ValueError)):
            asyncio.run(scheduler.submit(SweepSubmission(spec=spec)))

    def test_warm_store_is_instant_done(self, tmp_path, tiny_spec,
                                        tiny_submission):
        scheduler = make_scheduler(tmp_path)
        for task in tasks_from_spec(tiny_spec):
            scheduler.store.put(task.cache_key(), run_cell(task))
        status = asyncio.run(scheduler.submit(tiny_submission))
        assert status["state"] == "done"
        assert status["store_hits"] == 4
        assert status["misses"] == 0
        assert scheduler.queue_depth() == 0


class TestDedup:
    def test_overlapping_submissions_share_cells(self, tmp_path,
                                                 tiny_spec, overlap_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            first = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="a", owner="alice"))
            second = await scheduler.submit(SweepSubmission(
                spec=overlap_spec, name="b", owner="bob"))
            return scheduler, first, second

        scheduler, first, second = asyncio.run(scenario())
        # bv_n400 x 2 schemes overlaps -> 2 dedup hits on the second.
        assert first["misses"] == 4
        assert second["dedup_hits"] == 2
        assert second["misses"] == 2
        assert scheduler.counters.dedup_hits == 2
        assert scheduler.queue_depth() == 6  # 8 cells, 2 shared

    def test_dedup_complete_settles_both_submissions(self, tmp_path,
                                                     tiny_spec,
                                                     overlap_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            a = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="a"))
            b = await scheduler.submit(SweepSubmission(
                spec=overlap_spec, name="b"))
            await drain(scheduler)
            return (scheduler.status(a["id"]), scheduler.status(b["id"]),
                    scheduler.counters)

        status_a, status_b, counters = asyncio.run(scenario())
        assert status_a["state"] == "done"
        assert status_b["state"] == "done"
        # 8 requested cells, only 6 executed.
        assert counters.completes == 6
        assert counters.cells_total == 8
        assert counters.hits() == 2
        assert counters.hit_rate() == pytest.approx(2 / 8)

    def test_resubmit_after_done_is_all_store_hits(self, tmp_path,
                                                   tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(spec=tiny_spec))
            await drain(scheduler)
            return await scheduler.submit(SweepSubmission(spec=tiny_spec))

        status = asyncio.run(scenario())
        assert status["state"] == "done"
        assert status["store_hits"] == 4


class TestPriorityAndQuota:
    def test_lower_priority_value_leases_first(self, tmp_path, tiny_spec,
                                               overlap_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="slow", priority=5))
            urgent = await scheduler.submit(SweepSubmission(
                spec=overlap_spec, name="urgent", priority=0))
            grants = []
            for _ in range(2):
                job = await scheduler.lease("w0")
                grants.append(job["key"])
            return urgent, grants

        urgent, grants = asyncio.run(scenario())
        # The urgent submission's two *fresh* cells (w_state) lease
        # before any priority-5 cell; its two deduped bv cells were
        # raised to priority 0 too, so all grants serve the urgent sweep.
        scheduler_keys = set(grants)
        assert len(scheduler_keys) == 2

    def test_dedup_raises_existing_job_priority(self, tmp_path, tiny_spec,
                                                overlap_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="slow", priority=7))
            await scheduler.submit(SweepSubmission(
                spec=overlap_spec, name="urgent", priority=1))
            overlap_keys = {task.cache_key()
                            for task in tasks_from_spec(overlap_spec)}
            first = await scheduler.lease("w0")
            return first["key"] in overlap_keys

        assert asyncio.run(scenario())

    def test_quota_caps_inflight_leases(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path, quotas={"alice": 1})
            await scheduler.submit(SweepSubmission(
                spec=tiny_spec, owner="alice"))
            first = await scheduler.lease("w0")
            second = await scheduler.lease("w1")  # at quota -> nothing
            await scheduler.complete(
                "w0", first["key"], first["lease"],
                result=run_cell(
                    SweepTask.from_dict(first["task"])).to_dict())
            third = await scheduler.lease("w1")
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first is not None
        assert second is None
        assert third is not None

    def test_quota_does_not_block_other_owners(self, tmp_path, tiny_spec,
                                               overlap_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path, quotas={"alice": 1})
            await scheduler.submit(SweepSubmission(
                spec=tiny_spec, owner="alice", priority=0))
            await scheduler.submit(SweepSubmission(
                spec=overlap_spec, owner="bob", priority=5))
            grants = [await scheduler.lease("w{}".format(i))
                      for i in range(3)]
            return grants

        grants = [g for g in asyncio.run(scenario()) if g is not None]
        # alice gets 1 lease (quota), bob's two fresh cells still flow.
        assert len(grants) == 3


@pytest.fixture
def one_cell_spec() -> SweepSpec:
    """A single cell, so lease-lifecycle tests always re-lease *it*."""
    return SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                     scales=(SCALE,), shots=(1,))


class TestLeaseLifecycle:
    def test_expired_lease_is_regranted_once(self, tmp_path,
                                             one_cell_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=0.01)
            await scheduler.submit(SweepSubmission(spec=one_cell_spec))
            first = await scheduler.lease("doomed")
            await asyncio.sleep(0.03)
            expired = await scheduler.expire_leases()
            second = await scheduler.lease("healthy")
            return first, expired, second, scheduler.counters

        first, expired, second, counters = asyncio.run(scenario())
        assert expired == 1
        assert counters.leases_expired == 1
        assert second["key"] == first["key"]  # same cell, re-leased
        assert second["attempt"] == 2
        assert second["lease"] != first["lease"]

    def test_max_attempts_fails_the_cell(self, tmp_path, one_cell_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=0.01,
                                       max_attempts=2)
            status = await scheduler.submit(
                SweepSubmission(spec=one_cell_spec))
            doomed_key = None
            for _ in range(2):
                job = await scheduler.lease("doomed")
                doomed_key = job["key"]
                await asyncio.sleep(0.03)
                await scheduler.expire_leases()
            return scheduler.status(status["id"]), doomed_key

        status, doomed_key = asyncio.run(scenario())
        assert status["state"] == "failed"
        assert status["cells_failed"] == 1
        assert any(key == doomed_key for key in status["errors"])

    def test_late_complete_is_accepted_idempotently(self, tmp_path,
                                                    one_cell_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path, lease_ttl=0.01)
            await scheduler.submit(SweepSubmission(spec=one_cell_spec))
            stale = await scheduler.lease("slow")
            cell = run_cell(SweepTask.from_dict(stale["task"]))
            await asyncio.sleep(0.03)
            await scheduler.expire_leases()
            fresh = await scheduler.lease("fast")
            assert fresh["key"] == stale["key"]
            # The presumed-dead worker reports after all -- same bytes.
            late = await scheduler.complete(
                "slow", stale["key"], stale["lease"],
                result=cell.to_dict())
            dup = await scheduler.complete(
                "fast", fresh["key"], fresh["lease"],
                result=cell.to_dict())
            return late, dup, scheduler.counters

        late, dup, counters = asyncio.run(scenario())
        assert late["late"] is True
        assert dup["late"] is True  # job already settled by the late one
        assert counters.late_completes >= 1

    def test_failed_cell_reported_not_retried(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            status = await scheduler.submit(SweepSubmission(spec=tiny_spec))
            job = await scheduler.lease("w0")
            await scheduler.fail("w0", job["key"], job["lease"],
                                 error="ValueError: boom")
            resub = await scheduler.submit(SweepSubmission(spec=tiny_spec))
            return scheduler.status(status["id"]), resub

        status, resub = asyncio.run(scenario())
        assert status["state"] == "failed"
        assert "boom" in list(status["errors"].values())[0]
        # The failure memo short-circuits resubmissions of the bad cell.
        assert resub["cells_failed"] == 1

    def test_stored_complete_requires_store_entry(self, tmp_path,
                                                  tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(spec=tiny_spec))
            job = await scheduler.lease("w0")
            with pytest.raises(ServiceError):
                await scheduler.complete("w0", job["key"], job["lease"],
                                         stored=True)

        asyncio.run(scenario())


class TestFetch:
    def test_fetch_matches_serial_digest(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            status = await scheduler.submit(SweepSubmission(
                spec=tiny_spec, name="tiny"))
            await drain(scheduler)
            return await scheduler.fetch(status["id"])

        doc = asyncio.run(scenario())
        reference = serial_bench(tiny_spec, name="tiny")
        assert doc["results_sha256"] == reference["results_sha256"]
        assert doc["results"] == reference["results"]

    def test_fetch_while_running_rejected(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            status = await scheduler.submit(SweepSubmission(spec=tiny_spec))
            with pytest.raises(ServiceError):
                await scheduler.fetch(status["id"])

        asyncio.run(scenario())

    def test_unknown_submission_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        with pytest.raises(ServiceError):
            scheduler.status("s999999")
        with pytest.raises(ServiceError):
            asyncio.run(scheduler.fetch("s999999"))


class TestMetrics:
    def test_metrics_shape(self, tmp_path, tiny_spec):
        async def scenario():
            scheduler = make_scheduler(tmp_path)
            await scheduler.submit(SweepSubmission(spec=tiny_spec))
            await scheduler.lease("w0", pid=4321)
            return scheduler.metrics()

        metrics = asyncio.run(scenario())
        assert metrics["counters"]["leases_granted"] == 1
        assert metrics["queue_depth"] == 3
        assert metrics["leased"] == 1
        assert metrics["workers"]["w0"]["pid"] == 4321
        assert metrics["lease_latency"]["count"] == 1
        assert metrics["submissions"] == {"running": 1, "done": 0,
                                          "failed": 0}

    def test_counters_to_dict_sums(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.counters.store_hits = 3
        scheduler.counters.dedup_hits = 2
        scheduler.counters.cells_total = 10
        data = scheduler.counters.to_dict()
        assert data["hits"] == 5
        assert data["hit_rate"] == 0.5
