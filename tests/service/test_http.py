"""HTTP front end: in-process asyncio tests + full-stack CLI smoke.

The in-process tests drive :class:`ServiceServer` with the matching
``http_request`` client (real sockets on an ephemeral port, no
subprocesses).  ``TestFullStack`` then boots the real thing — ``python
-m repro.service serve`` with two spawned workers — and replays the CI
service-smoke scenario: two overlapping submissions, cross-submission
dedup, artifact byte-identical to the serial sweep.
"""

import asyncio
import subprocess
import sys
import threading

import pytest

from repro.harness.benchjson import validate_bench
from repro.harness.parallel import SweepTask, run_cell
from repro.service import client
from repro.service.http import ServiceServer, http_request
from repro.service.scheduler import Scheduler
from repro.service.store import CellStore

from svc_util import free_port, repro_env, serial_bench


async def start_server(tmp_path, **scheduler_kwargs):
    scheduler = Scheduler(CellStore(str(tmp_path / "store")),
                          **scheduler_kwargs)
    server = ServiceServer(scheduler, port=0)
    await server.start()
    return server


class TestRoutes:
    def test_healthz_and_metrics(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                status, body = await http_request(
                    server.host, server.port, "GET", "/healthz")
                mstatus, metrics = await http_request(
                    server.host, server.port, "GET",
                    "/metrics?format=json")
            finally:
                await server.close()
            return status, body, mstatus, metrics

        status, body, mstatus, metrics = asyncio.run(scenario())
        assert (status, body) == (200, {"ok": True})
        assert mstatus == 200
        assert metrics["counters"]["submissions"] == 0

    def test_unknown_route_404(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                return await http_request(server.host, server.port,
                                          "GET", "/nope")
            finally:
                await server.close()

        status, body = asyncio.run(scenario())
        assert status == 404
        assert "no route" in body["error"]

    def test_malformed_body_400(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                blob = b"not json"
                writer.write(
                    b"POST /submit HTTP/1.1\r\n"
                    b"Content-Length: " +
                    str(len(blob)).encode() + b"\r\n\r\n" + blob)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw
            finally:
                await server.close()

        raw = asyncio.run(scenario())
        assert b"400" in raw.split(b"\r\n", 1)[0]

    def test_bad_submission_400(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                return await http_request(
                    server.host, server.port, "POST", "/submit",
                    {"spec": {"workloads": ["no_such_workload"]}})
            finally:
                await server.close()

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "error" in body

    def test_unknown_submission_404(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            try:
                return await http_request(server.host, server.port,
                                          "GET", "/status/s999999")
            finally:
                await server.close()

        status, body = asyncio.run(scenario())
        assert status == 404


class TestInProcessEndToEnd:
    def test_submit_work_fetch_roundtrip(self, tmp_path, tiny_spec,
                                         tiny_submission):
        async def scenario():
            server = await start_server(tmp_path)
            host, port = server.host, server.port
            try:
                status, sub = await http_request(
                    host, port, "POST", "/submit",
                    tiny_submission.to_dict())
                assert status == 201
                # Act as a worker over the wire until the queue drains.
                while True:
                    _, reply = await http_request(
                        host, port, "POST", "/lease",
                        {"worker": "t0", "max_wait": 0.0})
                    job = reply.get("job")
                    if job is None:
                        break
                    cell = run_cell(SweepTask.from_dict(job["task"]))
                    code, _ = await http_request(
                        host, port, "POST", "/complete",
                        {"worker": "t0", "key": job["key"],
                         "lease": job["lease"],
                         "result": cell.to_dict()})
                    assert code == 200
                _, final = await http_request(
                    host, port, "GET", "/status/{}".format(sub["id"]))
                fcode, doc = await http_request(
                    host, port, "GET", "/fetch/{}".format(sub["id"]))
                return final, fcode, doc
            finally:
                await server.close()

        final, fcode, doc = asyncio.run(scenario())
        assert final["state"] == "done"
        assert fcode == 200
        reference = serial_bench(tiny_spec, name="tiny")
        assert doc["results_sha256"] == reference["results_sha256"]

    def test_concurrent_overlapping_submissions_dedup(self, tmp_path,
                                                      tiny_spec,
                                                      overlap_spec):
        from repro.harness.spec import SweepSubmission

        async def scenario():
            server = await start_server(tmp_path)
            host, port = server.host, server.port
            try:
                results = await asyncio.gather(
                    http_request(host, port, "POST", "/submit",
                                 SweepSubmission(spec=tiny_spec,
                                                 name="a").to_dict()),
                    http_request(host, port, "POST", "/submit",
                                 SweepSubmission(spec=overlap_spec,
                                                 name="b").to_dict()))
                _, metrics = await http_request(host, port, "GET",
                                                "/metrics?format=json")
                return results, metrics
            finally:
                await server.close()

        results, metrics = asyncio.run(scenario())
        assert all(code == 201 for code, _ in results)
        counters = metrics["counters"]
        assert counters["cells_total"] == 8
        assert counters["dedup_hits"] == 2
        assert metrics["queue_depth"] == 6


@pytest.mark.slow
class TestFullStack:
    """The CI service-smoke scenario as a test: real serve subprocess,
    two real workers, overlapping submissions from two client threads."""

    def test_serve_submit_fetch_byte_identity(self, tmp_path, tiny_spec,
                                              overlap_spec):
        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        store = tmp_path / "store"
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", str(port), "--store", str(store),
             "--workers", "2", "--worker-poll", "1"],
            env=repro_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT)
        try:
            client.wait_healthy(url, timeout=60.0)

            def submit(spec, name):
                from repro.harness.spec import SweepSubmission

                sub = client.submit(url, SweepSubmission(
                    spec=spec, name=name))
                client.wait_done(url, sub["id"], timeout=180.0)
                doc = client.fetch(url, sub["id"])
                docs[name] = doc

            docs = {}
            threads = [
                threading.Thread(target=submit, args=(tiny_spec, "a")),
                threading.Thread(target=submit, args=(overlap_spec, "b")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=240.0)
            metrics = client.metrics(url)
        finally:
            serve.terminate()
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()

        assert set(docs) == {"a", "b"}
        counters = metrics["counters"]
        # 8 cells across the two sweeps, 2 shared: at most 6 executed
        # (hits can exceed 2 if one sweep finished before the other
        # submitted — then the overlap lands as store hits instead).
        assert counters["cells_total"] == 8
        assert counters["store_hits"] + counters["dedup_hits"] >= 2
        assert counters["completes"] <= 6
        # Byte-identity against the serial offline sweep.
        assert docs["a"]["results_sha256"] == \
            serial_bench(tiny_spec, name="a")["results_sha256"]
        assert docs["b"]["results_sha256"] == \
            serial_bench(overlap_spec, name="b")["results_sha256"]
        # Fetched documents revalidate against the BENCH schema.
        validate_bench(docs["a"])
        validate_bench(docs["b"])
