"""Shared fixtures for the sweep-service tests.

Everything here stays tiny (scale 0.02, two workloads x two schemes =
four cells) so the full service stack — scheduler, HTTP front end,
worker subprocesses, crash-resume — is exercised in seconds.  Helper
*functions* live in :mod:`svc_util` (importable as a plain module);
this file only defines fixtures.
"""

import pytest

from repro.harness.spec import SweepSpec, SweepSubmission

from svc_util import SCALE, SCHEMES, WORKLOADS


@pytest.fixture
def tiny_spec() -> SweepSpec:
    """Four fast cells: two workloads x two schemes at scale 0.02."""
    return SweepSpec(workloads=WORKLOADS, schemes=SCHEMES,
                     scales=(SCALE,), shots=(1,))


@pytest.fixture
def overlap_spec() -> SweepSpec:
    """Overlaps ``tiny_spec`` on the bv_n400 column (2 of its 4 cells
    are shared) — the cross-submission dedup scenario."""
    return SweepSpec(workloads=("bv_n400", "w_state_n800"),
                     schemes=SCHEMES, scales=(SCALE,), shots=(1,))


@pytest.fixture
def tiny_submission(tiny_spec) -> SweepSubmission:
    return SweepSubmission(spec=tiny_spec, name="tiny", owner="alice")
