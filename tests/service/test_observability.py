"""Service observability: Prometheus scrape format and /status phase
breakdowns.

The scrape-format test is the contract the CI obs-smoke job relies on:
bare ``GET /metrics`` answers Prometheus text exposition (version 0.0.4
content type, ``# TYPE`` lines, cumulative histogram buckets ending in
``+Inf``) while ``?format=json`` keeps the JSON dict the Python client
and the older smoke assertions consume.
"""

import asyncio

from repro.harness.parallel import SweepTask, run_cell
from repro.harness.spec import SweepSubmission
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.service.http import (ServiceServer, http_request,
                                http_request_text)
from repro.service.scheduler import Scheduler
from repro.service.store import CellStore


async def _start(tmp_path, **scheduler_kwargs):
    scheduler = Scheduler(CellStore(str(tmp_path / "store")),
                          **scheduler_kwargs)
    server = ServiceServer(scheduler, port=0)
    await server.start()
    return server


class TestPrometheusScrape:
    def test_metrics_default_is_prometheus_text(self, tmp_path,
                                                tiny_spec):
        async def scenario():
            server = await _start(tmp_path)
            try:
                await server.scheduler.submit(
                    SweepSubmission(spec=tiny_spec, name="scrape"))
                await server.scheduler.lease("w0", max_wait=0.0)
                return await http_request_text(
                    server.host, server.port, "/metrics")
            finally:
                await server.close()

        status, content_type, text = asyncio.run(scenario())
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        lines = text.splitlines()
        # Scheduler lifetime counters with TYPE metadata.
        assert "# TYPE repro_service_submissions_total counter" in lines
        assert "repro_service_submissions_total 1" in lines
        assert "# TYPE repro_service_cells_total counter" in lines
        assert "repro_service_leases_granted_total 1" in lines
        # Live gauges.
        assert any(line.startswith("repro_service_queue_depth ")
                   for line in lines)
        assert "repro_service_leased 1" in lines
        assert 'repro_service_submission_states{state="running"} 1' \
            in lines
        # The lease-latency histogram renders cumulative buckets
        # terminated by +Inf, plus the _count series.
        assert any(
            line.startswith(
                'repro_service_lease_latency_seconds_bucket{le="+Inf"}')
            for line in lines)
        assert any(
            line.startswith("repro_service_lease_latency_seconds_count")
            for line in lines)
        # Every non-comment line is NAME[{labels}] VALUE.
        for line in lines:
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None

    def test_metrics_json_format_preserved(self, tmp_path):
        async def scenario():
            server = await _start(tmp_path)
            try:
                return await http_request(
                    server.host, server.port, "GET",
                    "/metrics?format=json")
            finally:
                await server.close()

        status, metrics = asyncio.run(scenario())
        assert status == 200
        assert metrics["counters"]["submissions"] == 0
        assert "queue_depth" in metrics

    def test_unknown_metrics_format_400(self, tmp_path):
        async def scenario():
            server = await _start(tmp_path)
            try:
                return await http_request(
                    server.host, server.port, "GET",
                    "/metrics?format=xml")
            finally:
                await server.close()

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "unknown metrics format" in body["error"]


class TestPhaseBreakdown:
    def test_complete_timings_surface_in_status(self, tmp_path,
                                                tiny_spec):
        async def scenario():
            server = await _start(tmp_path)
            host, port = server.host, server.port
            try:
                _, sub = await http_request(
                    host, port, "POST", "/submit",
                    SweepSubmission(spec=tiny_spec,
                                    name="timed").to_dict())
                for _ in range(len(tiny_spec.cells())):
                    _, reply = await http_request(
                        host, port, "POST", "/lease",
                        {"worker": "w0"})
                    job = reply["job"]
                    cell = run_cell(SweepTask.from_dict(job["task"]))
                    code, _ = await http_request(
                        host, port, "POST", "/complete",
                        {"worker": "w0", "key": job["key"],
                         "lease": job["lease"],
                         "result": cell.to_dict(),
                         "timings": {"compile": 0.25, "simulate": 0.5,
                                     "noise": 0.125, "total": 1.0}})
                    assert code == 200
                _, status = await http_request(
                    host, port, "GET", "/status/{}".format(sub["id"]))
                return status
            finally:
                await server.close()

        status = asyncio.run(scenario())
        cells = status["cells_total"]
        assert status["state"] == "done"
        assert status["cells_timed"] == cells
        assert status["phase_seconds"]["compile"] == 0.25 * cells
        assert status["phase_seconds"]["simulate"] == 0.5 * cells
        assert status["phase_seconds"]["total"] == 1.0 * cells

    def test_timings_optional_and_validated(self, tmp_path, tiny_spec):
        async def scenario():
            server = await _start(tmp_path)
            host, port = server.host, server.port
            try:
                await http_request(
                    host, port, "POST", "/submit",
                    SweepSubmission(spec=tiny_spec,
                                    name="plain").to_dict())
                _, reply = await http_request(
                    host, port, "POST", "/lease", {"worker": "w0"})
                job = reply["job"]
                code, body = await http_request(
                    host, port, "POST", "/complete",
                    {"worker": "w0", "key": job["key"],
                     "lease": job["lease"], "result": {},
                     "timings": "not-a-dict"})
                return code, body
            finally:
                await server.close()

        code, body = asyncio.run(scenario())
        assert code == 400
        assert "timings must be an object" in body["error"]
