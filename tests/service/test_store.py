"""CellStore: roundtrip, SweepCache interop, counters, tmp hygiene."""

import os

import pytest

from repro.harness.parallel import SweepCache, run_cell, tasks_from_spec
from repro.service.store import CellStore


@pytest.fixture
def one_cell(tiny_spec):
    task = tasks_from_spec(tiny_spec)[0]
    return task.cache_key(), run_cell(task)


class TestRoundtrip:
    def test_put_get(self, tmp_path, one_cell):
        key, cell = one_cell
        store = CellStore(str(tmp_path / "store"))
        assert store.get(key) is None
        store.put(key, cell)
        assert store.has(key)
        assert store.get(key) == cell
        assert len(store) == 1

    def test_counters(self, tmp_path, one_cell):
        key, cell = one_cell
        store = CellStore(str(tmp_path / "store"))
        store.get(key)
        store.put(key, cell)
        store.get(key)
        counters = store.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["puts"] == 1

    def test_put_leaves_no_tmp(self, tmp_path, one_cell):
        key, cell = one_cell
        store = CellStore(str(tmp_path / "store"))
        store.put(key, cell)
        assert store.pending_tmps() == 0


class TestSweepCacheInterop:
    """The store *is* the harness cache layout: a --cache-dir sweep
    warms the service store and vice versa."""

    def test_cache_write_is_store_hit(self, tmp_path, one_cell):
        key, cell = one_cell
        directory = str(tmp_path / "shared")
        SweepCache(directory).put(key, cell)
        store = CellStore(directory)
        assert store.has(key)
        assert store.get(key) == cell

    def test_store_write_is_cache_hit(self, tmp_path, one_cell):
        key, cell = one_cell
        directory = str(tmp_path / "shared")
        CellStore(directory).put(key, cell)
        assert SweepCache(directory).get(key) == cell


class TestOrphanReclaim:
    def test_orphan_tmp_reclaimed_on_open(self, tmp_path):
        directory = tmp_path / "store"
        directory.mkdir()
        orphan = directory / "tmp-4000000-deadbeef.tmp"  # dead writer pid
        orphan.write_bytes(b"torn write")
        store = CellStore(str(directory))
        assert not orphan.exists()
        assert store.pending_tmps() == 0

    def test_reclaim_lock_file_not_listed_as_entry(self, tmp_path):
        store = CellStore(str(tmp_path / "store"))
        lockfile = os.path.join(store.directory,
                                SweepCache.RECLAIM_LOCK_NAME)
        open(lockfile, "ab").close()
        assert len(store) == 0
