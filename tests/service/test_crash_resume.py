"""Crash-resume: SIGKILL a worker mid-cell, watch the sweep finish.

The satellite-3 scenario from the issue, end to end with real
processes:

* the scheduler runs with a short lease TTL,
* worker A is started with ``--cell-delay-ms`` large enough that it is
  provably *mid-cell* (leased, not yet stored) when we ``kill -9`` it,
* the lease expires and the cell is re-leased exactly once to a healthy
  worker B,
* the store never holds a torn write (orphan ``*.tmp`` reclaim from the
  previous PR covers the complementary killed-during-write window),
* the final artifact digest equals an uninterrupted serial run.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.spec import SweepSpec, SweepSubmission
from repro.service import client
from repro.service.store import CellStore

from svc_util import SCALE, free_port, repro_env, serial_bench

#: Big enough that metrics-poll + SIGKILL always lands inside the
#: delay window, small enough to keep the test quick.
CELL_DELAY_MS = 4000
LEASE_TTL = 1.0


def spawn_worker(url, store, worker_id, cell_delay_ms=0):
    command = [sys.executable, "-m", "repro.service.worker",
               "--url", url, "--store", str(store),
               "--worker-id", worker_id, "--poll", "0.5"]
    if cell_delay_ms:
        command += ["--cell-delay-ms", str(cell_delay_ms)]
    return subprocess.Popen(command, env=repro_env())


@pytest.mark.slow
class TestCrashResume:
    def test_sigkill_mid_cell_resumes_byte_identical(self, tmp_path):
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))
        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        store = tmp_path / "store"
        # Plant a torn write from a "previous" crashed run: a dead
        # writer's temp file must be reclaimed when the store opens.
        store.mkdir()
        orphan = store / "tmp-4000000-torn.tmp"
        orphan.write_bytes(b"torn")
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", str(port), "--store", str(store),
             "--workers", "0", "--lease-ttl", str(LEASE_TTL)],
            env=repro_env())
        doomed = healthy = None
        try:
            client.wait_healthy(url, timeout=60.0)
            assert not orphan.exists(), "orphan tmp survived store open"

            sub = client.submit(url, SweepSubmission(
                spec=spec, name="resume"))
            assert sub["cells_total"] == 1

            doomed = spawn_worker(url, store, "doomed",
                                  cell_delay_ms=CELL_DELAY_MS)
            deadline = time.monotonic() + 60.0
            while client.metrics(url)["counters"]["leases_granted"] < 1:
                assert time.monotonic() < deadline, \
                    "worker never leased the cell"
                time.sleep(0.05)
            # Provably mid-cell: leased, inside the delay window, no
            # store write yet.
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=10)
            assert len(CellStore(str(store))) == 0

            healthy = spawn_worker(url, store, "healthy")
            status = client.wait_done(url, sub["id"], timeout=120.0)
            assert status["state"] == "done"

            metrics = client.metrics(url)
            counters = metrics["counters"]
            assert counters["leases_expired"] == 1
            assert counters["leases_granted"] == 2  # re-leased exactly once
            assert counters["completes"] == 1
            assert metrics["workers"]["healthy"]["leases"] == 1

            doc = client.fetch(url, sub["id"])
        finally:
            for process in (healthy, doomed):
                if process is not None and process.poll() is None:
                    process.terminate()
            serve.terminate()
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()

        # No torn writes anywhere in the store after the whole dance.
        leftovers = [name for name in os.listdir(str(store))
                     if name.endswith(".tmp")]
        assert leftovers == []
        # And the interrupted-then-resumed sweep is byte-identical to an
        # uninterrupted serial run.
        reference = serial_bench(spec, name="resume")
        assert doc["results_sha256"] == reference["results_sha256"]
        assert doc["results"] == reference["results"]

    def test_scheduler_restart_resumes_from_store(self, tmp_path):
        """Kill the *scheduler* after completion; a fresh one over the
        same store resolves the resubmitted sweep without recompute."""
        spec = SweepSpec(workloads=("bv_n400",), schemes=("bisp",),
                         scales=(SCALE,), shots=(1,))
        store = tmp_path / "store"
        submission = SweepSubmission(spec=spec, name="restart")

        def boot(port):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.service", "serve",
                 "--port", str(port), "--store", str(store),
                 "--workers", "1", "--worker-poll", "0.5"],
                env=repro_env())

        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        serve = boot(port)
        try:
            client.wait_healthy(url, timeout=60.0)
            first = client.submit(url, submission)
            client.wait_done(url, first["id"], timeout=120.0)
        finally:
            serve.send_signal(signal.SIGKILL)
            serve.wait(timeout=10)

        port = free_port()
        url = "http://127.0.0.1:{}".format(port)
        serve = boot(port)
        try:
            client.wait_healthy(url, timeout=60.0)
            second = client.submit(url, submission)
            # Warm store: instantly done, zero executions.
            assert second["state"] == "done"
            assert second["store_hits"] == 1
            assert client.metrics(url)["counters"]["completes"] == 0
        finally:
            serve.terminate()
            try:
                serve.wait(timeout=15)
            except subprocess.TimeoutExpired:
                serve.kill()
