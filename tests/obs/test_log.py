"""Unit tests for the structured logger and flight recorder."""

import argparse
import io
import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def restore_config():
    yield
    obs_log.configure()  # back to info/text/stderr
    obs_log.clear_flight_recorder()


def capture(level="info", json_mode=False):
    stream = io.StringIO()
    obs_log.configure(level=level, json_mode=json_mode, stream=stream)
    return stream


class TestLogger:
    def test_text_format_has_event_and_fields(self):
        stream = capture()
        obs_log.get_logger("repro.test").info(
            "cell_done", workload="bv_n400", shots=2)
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.test: cell_done" in line
        assert "workload=bv_n400" in line
        assert "shots=2" in line

    def test_fields_with_spaces_quoted(self):
        stream = capture()
        obs_log.get_logger("repro.test").info("note", msg="two words")
        assert 'msg="two words"' in stream.getvalue()

    def test_json_mode_one_object_per_line(self):
        stream = capture(json_mode=True)
        logger = obs_log.get_logger("repro.test")
        logger.info("first", a=1)
        logger.warning("second")
        lines = stream.getvalue().strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert docs[0]["event"] == "first"
        assert docs[0]["a"] == 1
        assert docs[0]["logger"] == "repro.test"
        assert docs[1]["level"] == "warning"

    def test_level_filtering(self):
        stream = capture(level="warning")
        logger = obs_log.get_logger("repro.test")
        logger.info("hidden")
        logger.error("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.configure(level="loud")

    def test_get_logger_cached(self):
        assert obs_log.get_logger("repro.x") is \
            obs_log.get_logger("repro.x")


class TestArgparseWiring:
    def test_add_and_configure_from_args(self):
        parser = argparse.ArgumentParser()
        obs_log.add_log_arguments(parser)
        args = parser.parse_args(["--log-level", "debug", "--log-json"])
        stream = io.StringIO()
        obs_log.configure_from_args(args)
        obs_log.configure(level=args.log_level,
                          json_mode=args.log_json, stream=stream)
        obs_log.get_logger("repro.test").debug("visible")
        assert json.loads(stream.getvalue())["event"] == "visible"

    def test_defaults(self):
        parser = argparse.ArgumentParser()
        obs_log.add_log_arguments(parser)
        args = parser.parse_args([])
        assert args.log_level == "info"
        assert args.log_json is False


class TestFlightRecorder:
    def test_ring_records_below_level(self):
        capture(level="error")
        obs_log.clear_flight_recorder()
        logger = obs_log.get_logger("repro.test")
        logger.debug("quiet", step=1)
        logger.info("quieter", step=2)
        events = [record[3] for record in obs_log.flight_records()]
        assert events == ["quiet", "quieter"]

    def test_ring_bounded(self):
        capture(level="error")
        obs_log.clear_flight_recorder()
        logger = obs_log.get_logger("repro.test")
        for i in range(obs_log.FLIGHT_RECORDER_SIZE + 10):
            logger.debug("e{}".format(i))
        records = obs_log.flight_records()
        assert len(records) == obs_log.FLIGHT_RECORDER_SIZE
        assert records[-1][3] == "e{}".format(
            obs_log.FLIGHT_RECORDER_SIZE + 9)

    def test_dump_formats_block(self):
        capture(level="error")
        obs_log.clear_flight_recorder()
        obs_log.get_logger("repro.test").debug("lead_up", key="abc")
        out = io.StringIO()
        count = obs_log.dump_flight_recorder(
            stream=out, reason="cell failure abc")
        text = out.getvalue()
        assert count == 1
        assert "flight recorder: last 1 event(s) before cell failure" \
            in text
        assert "lead_up" in text
        assert text.strip().endswith("-- end flight recorder --")

    def test_dump_limit(self):
        capture(level="error")
        obs_log.clear_flight_recorder()
        logger = obs_log.get_logger("repro.test")
        for i in range(5):
            logger.debug("e{}".format(i))
        out = io.StringIO()
        assert obs_log.dump_flight_recorder(stream=out, limit=2) == 2
        assert "e4" in out.getvalue()
        assert "e2" not in out.getvalue()
