"""Unit tests for span tracing and the Chrome trace-event exporter."""

import json
import subprocess
import sys

import pytest

from repro.obs import trace
from repro.sim.config import SimulationConfig
from repro.sim.telf import TelfRecord


@pytest.fixture
def tracing():
    trace.start_tracing()
    yield
    trace.stop_tracing()
    trace.start_tracing()  # clear buffered events...
    trace.stop_tracing()   # ...and leave the tracer idle


class TestSpans:
    def test_idle_tracer_collects_nothing(self):
        assert not trace.tracing_active()
        with trace.span("ignored"):
            trace.instant("also ignored")
        assert trace.trace_events() == []

    def test_span_emits_balanced_pair(self, tracing):
        with trace.span("compile", cat="compile", scheme="bisp"):
            trace.instant("marker", detail=3)
        events = trace.trace_events()
        named = [e for e in events if e["name"] == "compile"]
        assert [e["ph"] for e in named] == ["B", "E"]
        begin, end = named
        assert begin["args"] == {"scheme": "bisp"}
        assert begin["ts"] <= end["ts"]
        (marker,) = [e for e in events if e["name"] == "marker"]
        assert marker["ph"] == "i"
        assert trace.validate_events(events) == []

    def test_nested_spans_validate(self, tracing):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        assert trace.validate_events(trace.trace_events()) == []

    def test_export_document_shape(self, tracing, tmp_path):
        with trace.span("cell"):
            pass
        path = tmp_path / "trace.json"
        doc = trace.export(str(path))
        assert doc["displayTimeUnit"] == "ms"
        assert json.loads(path.read_text()) == doc
        assert trace.validate_trace(doc) == []


class TestTelfMerge:
    def _records(self):
        return [
            TelfRecord(time=100, unit="cpu0", kind="cw", port=0,
                       value=1),
            TelfRecord(time=200, unit="tcu", kind="sync_book", port=-1,
                       value=0, note="sync"),
            TelfRecord(time=300, unit="cpu0", kind="cw", port=0,
                       value=1),
        ]

    def test_sim_track_separate_pid_and_named_lanes(self, tracing):
        config = SimulationConfig()
        added = trace.add_telf_events(self._records(), config=config)
        assert added == 6  # process_name + 2 thread_name + 3 instants
        import os

        events = trace.trace_events()
        sim = [e for e in events if e.get("cat") == "sim"]
        assert {e["pid"] for e in sim} == \
            {os.getpid() + trace.SIM_PID_OFFSET}
        # Cycle -> microsecond mapping through the clock config.
        first = [e for e in sim if e["name"] == "cw"][0]
        assert first["ts"] == pytest.approx(config.ns(100) / 1000.0)
        assert first["args"]["cycle"] == 100
        names = [e["args"]["name"] for e in events
                 if e["name"] == "thread_name"]
        assert names == ["cpu0", "tcu"]  # first-seen order
        assert trace.validate_events(events) == []

    def test_telf_event_limit_bounds_merge(self, tracing, monkeypatch):
        monkeypatch.setattr(trace, "TELF_EVENT_LIMIT", 2)
        assert trace.add_telf_events(self._records()) == 1
        assert trace.add_telf_events(self._records()) == 0

    def test_inactive_tracer_skips_telf(self):
        assert trace.add_telf_events(self._records()) == 0


class TestValidation:
    def test_missing_keys_reported(self):
        problems = trace.validate_events([{"ph": "B", "ts": 0}])
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_unbalanced_spans_reported(self):
        events = [{"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"}]
        problems = trace.validate_events(events)
        assert any("unclosed" in p for p in problems)

    def test_mismatched_end_reported(self):
        events = [
            {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "E", "ts": 1, "pid": 1, "tid": 1, "name": "b"},
        ]
        problems = trace.validate_events(events)
        assert any("does not match" in p for p in problems)

    def test_merge_concatenates_lanes(self):
        a = {"traceEvents": [{"ph": "i", "s": "t", "ts": 0, "pid": 1,
                              "tid": 1, "name": "x"}]}
        b = {"traceEvents": [{"ph": "i", "s": "t", "ts": 0, "pid": 2,
                              "tid": 1, "name": "y"}]}
        merged = trace.merge_traces([a, b])
        assert len(merged["traceEvents"]) == 2
        assert trace.validate_trace(merged) == []


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_validate_ok_and_invalid(self, tmp_path):
        good = self._write(tmp_path, "good.json", {"traceEvents": [
            {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "E", "ts": 1, "pid": 1, "tid": 1, "name": "a"},
        ]})
        bad = self._write(tmp_path, "bad.json", {"traceEvents": [
            {"ph": "E", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
        ]})
        assert trace.main(["validate", good]) == 0
        assert trace.main(["validate", good, bad]) == 1

    def test_merge_writes_combined_file(self, tmp_path, capsys):
        one = self._write(tmp_path, "one.json", {"traceEvents": [
            {"ph": "i", "s": "t", "ts": 0, "pid": 1, "tid": 1,
             "name": "x"}]})
        two = self._write(tmp_path, "two.json", {"traceEvents": [
            {"ph": "i", "s": "t", "ts": 0, "pid": 2, "tid": 1,
             "name": "y"}]})
        out = str(tmp_path / "merged.json")
        assert trace.main(["merge", "--out", out, one, two]) == 0
        merged = json.loads(open(out).read())
        assert len(merged["traceEvents"]) == 2

    def test_module_entrypoint(self, tmp_path):
        import os

        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        good = self._write(tmp_path, "good.json", {"traceEvents": []})
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.trace", "validate", good],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "OK (0 events, 0 lanes)" in proc.stdout
