"""Observability-off invariance: instrumentation never changes results.

``FROZEN_DIGEST`` is the sweep ``results_sha256`` captured on the build
*before* the observability layer existed (``repro.obs`` never imported,
no counters in the hot path) — the strongest form of the "obs never
imported" reference, frozen as a constant.  Every combination of replay
tier x instrumentation state must still produce it bit-for-bit: the
counters are pure additions, the timing histograms only read clocks,
and neither may perturb simulated time, fidelity, or row ordering.
"""

import pytest

from repro.harness.benchjson import make_bench
from repro.harness.spec import SweepSpec
from repro.harness.sweep import run_sweep
from repro.obs import metrics

#: results_sha256 of SPEC on the pre-observability build (all tiers).
FROZEN_DIGEST = \
    "4edc5b650a7c3f827a8210eb4b2eb145a7a2ad0b16fc34f815a0397f949826ea"

SPEC = SweepSpec(workloads=("bv_n400", "repetition_d25"),
                 schemes=("bisp", "lockstep"),
                 scales=(0.05,), shots=(1, 2))

TIERS = ("vector", "block", "legacy")


def _digest():
    rows, _ = run_sweep(SPEC, processes=1)
    doc = make_bench("invariance", rows, kind="sweep",
                     spec=SPEC.to_dict())
    return doc["results_sha256"]


@pytest.fixture(autouse=True)
def _obs_reset():
    yield
    metrics.set_enabled(None)


@pytest.mark.parametrize("tier", TIERS)
class TestDigestInvariance:
    def test_disabled_matches_pre_obs_build(self, tier, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_REPLAY_TIER", tier)
        metrics.set_enabled(False)
        assert _digest() == FROZEN_DIGEST

    def test_enabled_matches_pre_obs_build(self, tier, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_REPLAY_TIER", tier)
        metrics.set_enabled(True)
        assert _digest() == FROZEN_DIGEST


def test_enabled_actually_observes_timings(monkeypatch):
    """Guard against the gate being stuck off: with REPRO_OBS forced on
    a sweep must land samples in the phase histograms."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    metrics.set_enabled(True)
    hist = metrics.histogram("repro_cell_phase_seconds",
                             labels={"phase": "simulate"})
    before = hist.count
    assert _digest() == FROZEN_DIGEST
    assert hist.count > before


def test_counters_move_with_obs_disabled(monkeypatch):
    """Counters are the always-on tier: they advance even with timing
    instrumentation off (CI gates read them)."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    monkeypatch.setenv("REPRO_REPLAY_TIER", "vector")
    metrics.set_enabled(False)
    cells = metrics.counter("repro_sweep_cells_run_total")
    sims = metrics.counter("repro_simulations_total")
    cells_before, sims_before = cells.value, sims.value
    _digest()
    assert cells.value - cells_before == len(SPEC.cells())
    assert sims.value > sims_before
