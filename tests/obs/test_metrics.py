"""Unit tests for the metrics registry pillar."""

import pytest

from repro.errors import ReproError
from repro.obs import metrics
from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, render_prometheus)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_inc_and_value(self, registry):
        c = registry.counter("repro_test_total", "help text")
        c.inc()
        c.inc(3)
        c.value += 2
        assert c.value == 6
        assert c.sample() == {"repro_test_total": 6}
        c.reset()
        assert c.value == 0

    def test_gauge_set_and_track_max(self, registry):
        g = registry.gauge("repro_depth")
        g.set(4)
        g.track_max(2)
        assert g.value == 4
        g.track_max(9)
        assert g.value == 9

    def test_histogram_buckets_cumulate(self, registry):
        h = registry.histogram("repro_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        sample = h.sample()
        assert sample['repro_seconds_bucket{le="0.1"}'] == 1
        assert sample['repro_seconds_bucket{le="1"}'] == 3
        assert sample['repro_seconds_bucket{le="10"}'] == 4
        assert sample['repro_seconds_bucket{le="+Inf"}'] == 5
        assert sample["repro_seconds_count"] == 5
        # Wall-clock sum stays out of the deterministic sample.
        assert not any(k.endswith("_sum") for k in sample)
        assert h.sum == pytest.approx(56.05)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ReproError):
            Histogram("repro_empty", buckets=())

    def test_labels_key_sorted_and_escaped(self):
        c = Counter("repro_x", labels={"b": "2", "a": 'say "hi"'})
        assert c.key == 'repro_x{a="say \\"hi\\"",b="2"}'


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("repro_a") is registry.counter("repro_a")
        labeled = registry.counter("repro_a", labels={"k": "v"})
        assert labeled is not registry.counter("repro_a")

    def test_kind_conflict_raises(self, registry):
        registry.counter("repro_a")
        with pytest.raises(ReproError, match="already registered"):
            registry.gauge("repro_a")

    def test_snapshot_sorted_and_deterministic(self, registry):
        registry.counter("repro_z").inc(1)
        registry.counter("repro_a").inc(2)
        registry.gauge("repro_m").set(3)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == {"repro_a": 2, "repro_m": 3, "repro_z": 1}
        assert registry.snapshot() == snap

    def test_collector_merged_into_snapshot(self, registry):
        registry.register_collector(lambda: {"repro_pull": 7})
        assert registry.snapshot()["repro_pull"] == 7

    def test_reset_zeroes_everything(self, registry):
        registry.counter("repro_a").inc(5)
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        snap = registry.snapshot()
        assert snap["repro_a"] == 0
        assert snap["repro_h_count"] == 0


class TestEnabledGate:
    def test_timed_observes_only_when_enabled(self):
        h = Histogram("repro_gate_seconds")
        metrics.set_enabled(False)
        try:
            with metrics.timed(h):
                pass
            assert h.count == 0
            metrics.set_enabled(True)
            with metrics.timed(h):
                pass
            assert h.count == 1
        finally:
            metrics.set_enabled(None)

    def test_env_flag_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        metrics.set_enabled(None)
        try:
            assert metrics.enabled() is True
            monkeypatch.setenv("REPRO_OBS", "0")
            metrics.set_enabled(None)
            assert metrics.enabled() is False
        finally:
            monkeypatch.delenv("REPRO_OBS", raising=False)
            metrics.set_enabled(None)


class TestPrometheusRendering:
    def test_render_counters_gauges(self, registry):
        registry.counter("repro_a_total", "things done").inc(3)
        registry.gauge("repro_depth").set(2)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# HELP repro_a_total things done" in lines
        assert "# TYPE repro_a_total counter" in lines
        assert "repro_a_total 3" in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 2" in lines
        assert text.endswith("\n")

    def test_render_histogram_cumulative_with_inf(self, registry):
        h = registry.histogram("repro_h_seconds", buckets=(0.5, 1.0))
        h.observe(0.1)
        h.observe(0.7)
        h.observe(3.0)
        lines = render_prometheus(registry).splitlines()
        assert 'repro_h_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_h_seconds_bucket{le="1"} 2' in lines
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_h_seconds_count 3" in lines
        assert any(line.startswith("repro_h_seconds_sum ")
                   for line in lines)

    def test_labeled_series_share_one_type_line(self, registry):
        registry.counter("repro_pass_total",
                         labels={"pass": "lower"}).inc(1)
        registry.counter("repro_pass_total",
                         labels={"pass": "schedule"}).inc(2)
        lines = render_prometheus(registry).splitlines()
        assert lines.count("# TYPE repro_pass_total counter") == 1
        assert 'repro_pass_total{pass="lower"} 1' in lines
        assert 'repro_pass_total{pass="schedule"} 2' in lines


class TestProcessRegistry:
    def test_instrumented_modules_register_expected_names(self):
        # The tentpole's contract: these names exist process-wide once
        # the instrumented modules are imported (README documents them).
        import repro.compiler.driver  # noqa: F401
        import repro.harness.parallel  # noqa: F401
        import repro.isa.decoded  # noqa: F401
        import repro.service.scheduler  # noqa: F401

        names = {inst.name for inst in metrics.REGISTRY.instruments()}
        expected = {
            "repro_decode_pin_hits_total",
            "repro_decode_content_hits_total",
            "repro_decode_misses_total",
            "repro_replay_vector_batches_total",
            "repro_replay_vector_items_total",
            "repro_replay_block_batches_total",
            "repro_compilations_total",
            "repro_simulations_total",
            "repro_compile_seconds",
            "repro_simulate_seconds",
            "repro_engine_events_total",
            "repro_engine_far_events_total",
            "repro_engine_window_advances_total",
            "repro_queue_depth_high_water",
            "repro_sweep_cache_hits_total",
            "repro_sweep_cache_misses_total",
            "repro_sweep_cells_run_total",
            "repro_cell_phase_seconds",
            "repro_service_lease_latency_seconds",
            "repro_service_queue_depth",
        }
        missing = expected - names
        assert not missing, "unregistered metrics: {}".format(
            sorted(missing))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
